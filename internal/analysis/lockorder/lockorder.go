// Package lockorder builds the whole-program lock-acquisition graph
// and reports cycles — the static form of the deadlock-freedom claim
// DESIGN.md makes for the serving stack's mutexes (service shards,
// flightGroup, refresh set, coalescer, event bus, drift monitor).
//
// Where lockscope sees one function at a time, lockorder is
// interprocedural: each package exports, as a unitchecker fact, the
// set of locks every function may transitively acquire and the
// acquired-while-held edges observed so far; importing packages splice
// those summaries into their own graphs, so an edge created by calling
// into another package (service holds refreshMu → store takes
// Memory.mu) materializes without re-analyzing the callee.
//
// A lock's identity is its declaration site, not its instance:
// "pkgpath.(Type).field" for mutex fields, "pkgpath.var" for
// package-level mutexes. Two shards of one pool share an identity — a
// self-edge on a sharded lock is reported too, since acquiring two
// instances of the same class in arbitrary order is the classic
// sharded-deadlock. Function-local mutexes cannot participate in
// cross-function cycles and are ignored.
//
// A cycle is reported once, at the smallest-position local edge
// participating in it. Cycles whose edges all come from imported facts
// are re-reported only in package main — the one place that sees every
// package and cannot be imported itself — so a cross-package cycle
// between siblings neither of which imports the other still surfaces.
// The waiver is //aarc:lockorder <reason> on the acquire (or call)
// site whose edge the cycle should not include.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"aarc/internal/analysis"
	"aarc/internal/analysis/flow"
)

var Analyzer = &analysis.Analyzer{
	Name:  "lockorder",
	Doc:   "build the cross-package lock-acquisition graph and flag cycles (potential deadlocks)",
	Run:   run,
	Facts: true,
}

// Fact is one package's contribution to the whole-program graph.
type Fact struct {
	// Acquires maps a function's full name (flow.FullName) to the
	// lock identities it may transitively acquire on the calling
	// goroutine.
	Acquires map[string][]string `json:"acquires,omitempty"`
	// Edges are the acquired-while-held pairs observed in this package
	// and everything it imports.
	Edges []Edge `json:"edges,omitempty"`
}

// Edge records "To was acquired while From was held" at a source site.
type Edge struct {
	From string `json:"from"`
	To   string `json:"to"`
	// At is the printable position of the acquire or call site, for
	// cross-package cycle reports.
	At string `json:"at"`
}

// acquire is one direct lock acquisition observed during the walk.
type acquire struct {
	lock string
	pos  token.Pos
	held []string // locks held at this point, excluding lock itself
}

// callsite is one statically resolved call observed under held locks.
type callsite struct {
	callee string
	pos    token.Pos
	held   []string
	// detached marks calls made on a goroutine the function spawns:
	// they produce ordering edges on that goroutine's stack but do not
	// join the spawner's synchronous may-acquire set.
	detached bool
}

// funcSummary is the per-function result of the body walk.
type funcSummary struct {
	name     string
	acquires []acquire
	calls    []callsite
	direct   map[string]bool // lock IDs acquired synchronously
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Name(), "_test") {
		return nil
	}

	factAcquires := map[string][]string{}
	var depEdges []Edge
	for path := range pass.Facts {
		var f Fact
		if !pass.ImportFact(path, &f) {
			continue
		}
		for fn, locks := range f.Acquires {
			factAcquires[fn] = locks
		}
		depEdges = append(depEdges, f.Edges...)
	}

	// Phase 1: walk every declaration, collecting direct acquires,
	// held-at-call snapshots, and local edges.
	summaries := map[string]*funcSummary{}
	var order []string
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			w := &walker{pass: pass, sum: &funcSummary{name: flow.FullName(fn), direct: map[string]bool{}}}
			w.stmts(fd.Body.List, nil)
			summaries[w.sum.name] = w.sum
			order = append(order, w.sum.name)
		}
	}
	sort.Strings(order)

	// Phase 2: transitive may-acquire fixpoint over the local call
	// graph, seeded with direct acquires and imported summaries.
	may := map[string]map[string]bool{}
	for _, name := range order {
		m := map[string]bool{}
		for l := range summaries[name].direct {
			m[l] = true
		}
		may[name] = m
	}
	for changed := true; changed; {
		changed = false
		for _, name := range order {
			m := may[name]
			for _, c := range summaries[name].calls {
				if c.detached {
					continue
				}
				var callee []string
				if local, ok := may[c.callee]; ok {
					for l := range local {
						callee = append(callee, l)
					}
				} else {
					callee = factAcquires[c.callee]
				}
				for _, l := range callee {
					if !m[l] {
						m[l] = true
						changed = true
					}
				}
			}
		}
	}

	// Phase 3: materialize edges. Direct edges were captured with the
	// held set at the acquire; call edges pair every held lock with
	// everything the callee may acquire.
	type localEdge struct {
		Edge
		pos token.Pos
	}
	var local []localEdge
	addEdge := func(from, to string, pos token.Pos) {
		if m, ok := pass.Markers().At(pass.Fset, pos, "lockorder"); ok {
			if m.Arg == "" {
				pass.Reportf(pos, "//aarc:lockorder marker needs a reason")
			}
			return
		}
		local = append(local, localEdge{Edge{From: from, To: to, At: pass.Fset.Position(pos).String()}, pos})
	}
	for _, name := range order {
		s := summaries[name]
		for _, a := range s.acquires {
			for _, h := range a.held {
				addEdge(h, a.lock, a.pos)
			}
		}
		for _, c := range s.calls {
			if len(c.held) == 0 {
				continue
			}
			var acq []string
			if m, ok := may[c.callee]; ok {
				for l := range m {
					acq = append(acq, l)
				}
				sort.Strings(acq)
			} else {
				acq = factAcquires[c.callee]
			}
			for _, h := range c.held {
				for _, l := range acq {
					addEdge(h, l, c.pos)
				}
			}
		}
	}

	// Phase 4: cycle detection over dep + local edges.
	adj := map[string]map[string]bool{}
	nodeSet := map[string]bool{}
	add := func(e Edge) {
		if adj[e.From] == nil {
			adj[e.From] = map[string]bool{}
		}
		adj[e.From][e.To] = true
		nodeSet[e.From], nodeSet[e.To] = true, true
	}
	for _, e := range depEdges {
		add(e)
	}
	for _, e := range local {
		add(e.Edge)
	}
	var nodes []string
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	for _, scc := range stronglyConnected(nodes, adj) {
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		cyclic := len(scc) > 1
		if !cyclic { // single node: cyclic only via self-edge
			cyclic = adj[scc[0]][scc[0]]
		}
		if !cyclic {
			continue
		}
		desc := cycleString(scc, adj)

		// Prefer reporting at a local edge inside the cycle.
		best := token.NoPos
		var bestEdge Edge
		for _, e := range local {
			if inSCC[e.From] && inSCC[e.To] && adj[e.From][e.To] {
				if best == token.NoPos || e.pos < best {
					best, bestEdge = e.pos, e.Edge
				}
			}
		}
		if best != token.NoPos {
			pass.Reportf(best, "lock order cycle %s: this site acquires %s while holding %s; establish one canonical order (see DESIGN.md §14) or mark //aarc:lockorder <reason>", desc, shortLock(bestEdge.To), shortLock(bestEdge.From))
			continue
		}
		// No local edge: only main packages re-report imported cycles,
		// at the package clause for lack of a better anchor.
		if pass.Pkg.Name() == "main" && len(pass.Files) > 0 {
			// Every importing package's fact carries the same closed-over
			// edge set, so dedupe positions and keep the listing short.
			seen := map[string]bool{}
			var ats []string
			for _, e := range depEdges {
				if inSCC[e.From] && inSCC[e.To] && !seen[e.At] {
					seen[e.At] = true
					ats = append(ats, e.At)
				}
			}
			sort.Strings(ats)
			if len(ats) > 4 {
				ats = append(ats[:4], fmt.Sprintf("and %d more", len(ats)-4))
			}
			pass.Reportf(pass.Files[0].Package, "lock order cycle %s between imported packages (edges at %s); establish one canonical order or mark //aarc:lockorder <reason>", desc, strings.Join(ats, ", "))
		}
	}

	// Export this package's view: transitive acquires plus every edge
	// seen so far, so importers get the closure from direct deps alone.
	out := Fact{Acquires: map[string][]string{}}
	for _, name := range order {
		m := may[name]
		if len(m) == 0 {
			continue
		}
		locks := make([]string, 0, len(m))
		for l := range m {
			locks = append(locks, l)
		}
		sort.Strings(locks)
		out.Acquires[name] = locks
	}
	for fn, locks := range factAcquires {
		if _, ok := out.Acquires[fn]; !ok {
			out.Acquires[fn] = locks
		}
	}
	seenEdge := map[Edge]bool{}
	for _, e := range depEdges {
		if !seenEdge[e] {
			seenEdge[e] = true
			out.Edges = append(out.Edges, e)
		}
	}
	for _, e := range local {
		if !seenEdge[e.Edge] {
			seenEdge[e.Edge] = true
			out.Edges = append(out.Edges, e.Edge)
		}
	}
	sort.Slice(out.Edges, func(i, j int) bool {
		a, b := out.Edges[i], out.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.At < b.At
	})
	if pass.ExportFact != nil {
		pass.ExportFact(out)
	}
	return nil
}

// walker threads the held-lock list through a function body,
// lockscope-style: branch bodies get copies, go-statement bodies start
// empty and their acquires/calls are detached (they do not feed the
// spawning function's synchronous summary — a goroutine's locks are
// ordered on its own stack).
type walker struct {
	pass *analysis.Pass
	sum  *funcSummary
}

func (w *walker) stmts(list []ast.Stmt, held []string) []string {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func copyHeld(held []string) []string {
	return append([]string(nil), held...)
}

func without(held []string, lock string) []string {
	out := held[:0:0]
	for _, h := range held {
		if h != lock {
			out = append(out, h)
		}
	}
	return out
}

func (w *walker) stmt(s ast.Stmt, held []string) []string {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if lock, dir := w.lockCall(call); dir != 0 {
				if dir > 0 {
					w.record(lock, call.Pos(), held)
					return append(held, lock)
				}
				return without(held, lock)
			}
		}
		w.scan(s.X, held)
	case *ast.DeferStmt:
		if lock, dir := w.lockCall(s.Call); dir != 0 {
			if dir > 0 {
				w.record(lock, s.Call.Pos(), held)
				return append(held, lock)
			}
			return held // defer unlock: held until return
		}
		w.scan(s.Call, held)
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			w.scan(arg, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// Fresh goroutine, fresh stack: its internal ordering still
			// counts (it can deadlock against others), so walk it with
			// an empty held set into the same summary — but its calls
			// must not look synchronous, so the body is walked through
			// a detached summary and only its direct edges survive.
			w.goBody(lit.Body)
		}
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		w.scan(s.Cond, held)
		w.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scan(s.Cond, held)
		}
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		w.scan(s.X, held)
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scan(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.scan(rhs, held)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scan(r, held)
		}
	default:
		w.scanNode(s, held)
	}
	return held
}

// goBody walks a go-statement literal with a detached summary: direct
// acquires inside it produce edges on its own stack and feed nothing
// into the enclosing function's synchronous may-acquire set.
func (w *walker) goBody(body *ast.BlockStmt) {
	det := &walker{pass: w.pass, sum: &funcSummary{name: w.sum.name + "·go", direct: map[string]bool{}}}
	det.stmts(body.List, nil)
	// Direct edges observed inside the goroutine are real edges on its
	// own stack; its calls carry over detached so they stay out of the
	// spawner's synchronous may-acquire set, like det.sum.direct.
	w.sum.acquires = append(w.sum.acquires, det.sum.acquires...)
	for _, c := range det.sum.calls {
		c.detached = true
		w.sum.calls = append(w.sum.calls, c)
	}
}

func (w *walker) record(lock string, pos token.Pos, held []string) {
	w.sum.direct[lock] = true
	w.sum.acquires = append(w.sum.acquires, acquire{lock: lock, pos: pos, held: copyHeld(held)})
}

// scan records statically resolved calls in an expression evaluated
// with locks held, and walks function literals with the same held set
// (a literal built under a lock is overwhelmingly run under it).
func (w *walker) scan(e ast.Expr, held []string) {
	w.scanNode(e, held)
}

func (w *walker) scanNode(n ast.Node, held []string) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			w.stmts(x.Body.List, copyHeld(held))
			return false
		case *ast.CallExpr:
			if _, dir := w.lockCall(x); dir != 0 {
				return true // handled structurally where it matters
			}
			if fn := analysis.FuncOf(w.pass.TypesInfo, x); fn != nil && fn.Pkg() != nil {
				w.sum.calls = append(w.sum.calls, callsite{
					callee: flow.FullName(fn),
					pos:    x.Pos(),
					held:   copyHeld(held),
				})
			}
		}
		return true
	})
}

// lockCall classifies Lock/RLock (+1) and Unlock/RUnlock (-1) calls on
// sync mutexes and resolves the receiver to a declaration-site lock
// identity; dir 0 for everything else, lock "" when the receiver is a
// function-local mutex (which cannot cycle across functions).
func (w *walker) lockCall(call *ast.CallExpr) (lock string, dir int) {
	fn := analysis.FuncOf(w.pass.TypesInfo, call)
	if fn == nil || fn.Signature().Recv() == nil {
		return "", 0
	}
	if pkg := fn.Pkg(); pkg == nil || pkg.Path() != "sync" {
		return "", 0
	}
	switch fn.Name() {
	case "Lock", "RLock":
		dir = +1
	case "Unlock", "RUnlock":
		dir = -1
	default:
		return "", 0
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	return w.lockIdent(sel.X), dir
}

// lockIdent names the mutex expression by declaration site.
func (w *walker) lockIdent(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		// A field: name it by the owning named type.
		if selInfo, ok := w.pass.TypesInfo.Selections[e]; ok {
			t := selInfo.Recv()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return fmt.Sprintf("%s.(%s).%s", named.Obj().Pkg().Path(), named.Obj().Name(), e.Sel.Name)
			}
		}
		// Qualified package-level var (pkg.mu).
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := w.pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
				if v, ok := w.pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
					return v.Pkg().Path() + "." + v.Name()
				}
			}
		}
	case *ast.Ident:
		if v, ok := w.pass.TypesInfo.Uses[e].(*types.Var); ok && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
		}
	case *ast.IndexExpr:
		return w.lockIdent(e.X)
	}
	return "" // local or unresolvable: cannot participate in a cycle
}

// stronglyConnected returns Tarjan's SCCs over the adjacency map, in
// deterministic (smallest-member) order, ignoring "" nodes (dropped
// local locks).
func stronglyConnected(nodes []string, adj map[string]map[string]bool) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true

		var succs []string
		for s := range adj[v] {
			if s != "" {
				succs = append(succs, s)
			}
		}
		sort.Strings(succs)
		for _, s := range succs {
			if _, seen := index[s]; !seen {
				strongconnect(s)
				if low[s] < low[v] {
					low[v] = low[s]
				}
			} else if onStack[s] && index[s] < low[v] {
				low[v] = index[s]
			}
		}

		if low[v] == index[v] {
			var scc []string
			for {
				n := len(stack) - 1
				wtop := stack[n]
				stack = stack[:n]
				onStack[wtop] = false
				scc = append(scc, wtop)
				if wtop == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if v == "" {
			continue
		}
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}

// cycleString renders an SCC as a rotated cycle starting at its
// smallest lock, following edges within the SCC.
func cycleString(scc []string, adj map[string]map[string]bool) string {
	if len(scc) == 1 {
		s := shortLock(scc[0])
		return s + " → " + s
	}
	in := map[string]bool{}
	for _, n := range scc {
		in[n] = true
	}
	// Walk greedily from the smallest node, preferring unvisited
	// in-SCC successors; good enough for a readable description.
	start := scc[0]
	path := []string{start}
	visited := map[string]bool{start: true}
	cur := start
	for len(path) <= len(scc) {
		var succs []string
		for s := range adj[cur] {
			if in[s] {
				succs = append(succs, s)
			}
		}
		sort.Strings(succs)
		nextNode := ""
		for _, s := range succs {
			if !visited[s] {
				nextNode = s
				break
			}
		}
		if nextNode == "" {
			break
		}
		visited[nextNode] = true
		path = append(path, nextNode)
		cur = nextNode
	}
	parts := make([]string, 0, len(path)+1)
	for _, p := range path {
		parts = append(parts, shortLock(p))
	}
	parts = append(parts, shortLock(start))
	return strings.Join(parts, " → ")
}

// shortLock trims the module-internal path prefix for readability:
// "aarc/internal/service.(Service).mu" → "service.(Service).mu".
func shortLock(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}
