package lockorder_test

import (
	"testing"

	"aarc/internal/analysis/analysistest"
	"aarc/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "../testdata", lockorder.Analyzer, "lockorder/dep", "lockorder/svc")
}
