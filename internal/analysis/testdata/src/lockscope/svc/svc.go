// Fixture for lockscope: target calls (Search, store I/O, Publish,
// Evaluate) made while a sync mutex is statically held must be
// flagged; calls after release, on fresh goroutines, or under an
// //aarc:locked waiver must not.
package svc

import (
	"sync"

	"lockscope/event"
	"lockscope/store"
	"lockscope/workflow"
)

type engine struct{}

func (engine) Search(q string) string { return q }

type S struct {
	mu  sync.Mutex
	eng engine
	st  store.Store
	bus *event.Bus
	run *workflow.Runner
}

func (s *S) searchUnderLock(q string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Search(q) // want `a search while holding mutex s\.mu`
}

func (s *S) storeUnderLock() {
	s.mu.Lock()
	_ = s.st.Put("k", nil) // want `store I/O while holding mutex s\.mu`
	s.mu.Unlock()
}

func (s *S) publishUnderLock() {
	s.mu.Lock()
	s.bus.Publish("put", "fp") // want `an event publish while holding mutex s\.mu`
	s.mu.Unlock()
}

func (s *S) evaluateUnderLock() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.run.Evaluate(nil) // want `a workflow evaluation while holding mutex s\.mu`
}

// evaluateOwned is the sanctioned exception: the mutex exists to own
// the non-thread-safe callee.
func (s *S) evaluateOwned() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.run.Evaluate(nil) //aarc:locked the mutex owns this Runner; locking it is what makes Evaluate safe
}

func (s *S) afterUnlock(q string) string {
	s.mu.Lock()
	s.mu.Unlock()
	return s.eng.Search(q) // ok: lock already released
}

func (s *S) spawnedGoroutine(q string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.eng.Search(q) // ok: runs on its own goroutine, without the lock
	}()
}

// branchStaysHeld: a lock taken before a branch is held inside it.
func (s *S) branchStaysHeld(cold bool) {
	s.mu.Lock()
	if cold {
		_ = s.st.Put("k", nil) // want `store I/O while holding mutex s\.mu`
	}
	s.mu.Unlock()
}

func (s *S) noLockAtAll(q string) string {
	return s.eng.Search(q) // ok: nothing held
}
