// Fixture dependency for lockscope: a fake of the project's event bus.
package event

// Event is a published lifecycle event.
type Event struct{ Kind, Fingerprint string }

// Bus fans events out to subscribers; Publish can block on slow paths,
// which is exactly why it must not run under a mutex.
type Bus struct{}

// Publish emits one event.
func (*Bus) Publish(kind, fingerprint string) Event {
	return Event{Kind: kind, Fingerprint: fingerprint}
}
