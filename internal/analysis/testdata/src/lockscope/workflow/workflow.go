// Fixture dependency for lockscope: a fake of the project's workflow
// evaluation surface.
package workflow

// Runner evaluates a workflow under a resource assignment.
type Runner struct{}

// Evaluate runs one evaluation.
func (*Runner) Evaluate(args []float64) float64 { return 0 }

// MeanEvaluate averages repeated evaluations.
func (*Runner) MeanEvaluate(args []float64) float64 { return 0 }
