// Fixture dependency for lockscope: a fake of the project's store
// package. lockscope matches store I/O by method name + receiver
// package *name*, so only the package clause matters.
package store

// Store mirrors the real Store surface lockscope targets.
type Store interface {
	Get(key string) ([]byte, bool)
	Put(key string, body []byte) error
	Delete(key string) error
	Keys() []string
}
