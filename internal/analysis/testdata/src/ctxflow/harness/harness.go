// Fixture for ctxflow: "harness" is not a request-path package, so
// minting root contexts here is fine — only WithoutCancel (not used
// here) is policed tree-wide.
package harness

import "context"

// Run is the experiment-harness idiom: it owns its own root context.
func Run() context.Context {
	return context.Background() // ok: not a request-path package
}
