// Fixture for ctxflow: the import path ends in "service", so this is a
// request-path package and both rules apply — no unmarked context
// detachment, and exported entry points that drive context-accepting
// machinery must take a context themselves.
package service

import "context"

type engine struct{}

func (engine) search(ctx context.Context, q string) string {
	_ = ctx
	return q
}

// Service mimics the real serving facade.
type Service struct{ eng engine }

// Search drives the context-accepting engine but offers callers no way
// to cancel: the entry-point violation.
func (s *Service) Search(q string) string { // want `exported Search drives context-accepting search/store/evaluate machinery but accepts no context\.Context`
	return s.eng.search(context.Background(), q) // want `context\.Background\(\) mints a root context on the request path`
}

// Configure threads the caller's context end to end: compliant.
func (s *Service) Configure(ctx context.Context, q string) string {
	return s.eng.search(ctx, q)
}

// Dispatch is a pure table lookup — nothing it calls accepts a
// context, so requiring one would be noise.
func (s *Service) Dispatch(q string) string {
	return q
}

func (s *Service) refresh(ctx context.Context, q string) {
	bg := context.WithoutCancel(ctx) // want `context\.WithoutCancel detaches from the caller's cancellation`
	s.eng.search(bg, q)
}

func (s *Service) refreshMarked(ctx context.Context, q string) {
	bg := context.WithoutCancel(ctx) //aarc:detached shared cache entry must not die with one client
	s.eng.search(bg, q)
}

func (s *Service) refreshNoReason(ctx context.Context, q string) {
	bg := context.WithoutCancel(ctx) /* want `aarc:detached marker needs a reason` */ //aarc:detached
	_ = bg
}

func todoCtx() context.Context {
	return context.TODO() // want `context\.TODO\(\) mints a root context on the request path`
}

func lifecycleRoot() context.Context {
	return context.Background() //aarc:detached lifecycle root; Close cancels it
}
