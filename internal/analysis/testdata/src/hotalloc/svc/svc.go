// The hotalloc fixture: //aarc:hotpath roots with every forbidden
// construct, the near-misses that must stay legal (plain struct
// values, &lvalue, pointer-to-interface args), and the cross-package
// flow through dep's fact.
package svc

import "hotalloc/dep"

type entry struct {
	key  string
	hits int
}

type shard struct {
	entries [4]entry
}

type pool struct {
	shards []shard
}

// Fast is the model hot function: arithmetic, field access, taking
// the address of an existing element (no heap escape), and a call to
// an alloc-free dep function.
//
//aarc:hotpath
func Fast(p *pool, i int) int {
	sh := &p.shards[i%len(p.shards)] // &lvalue: legal, no allocation
	sh.entries[0].hits++
	return dep.Clean(sh.entries[0].hits)
}

//aarc:hotpath
func MapLiteral() map[string]int {
	return map[string]int{"a": 1} // want `map literal`
}

//aarc:hotpath
func SliceLiteral() []int {
	return []int{1, 2, 3} // want `slice literal`
}

//aarc:hotpath
func Closure(x int) func() int {
	return func() int { return x } // want `closure`
}

//aarc:hotpath
func Make() []int {
	return make([]int, 8) // want `make`
}

//aarc:hotpath
func New() *int {
	return new(int) // want `new`
}

//aarc:hotpath
func Append(s []int, v int) []int {
	return append(s, v) // want `append`
}

//aarc:hotpath
func EscapingComposite() *entry {
	return &entry{key: "x"} // want `composite literal`
}

//aarc:hotpath
func StringConv(b []byte) string {
	return string(b) // want `string conversion`
}

// ValueComposite is the near-miss: a plain struct value stays on the
// stack.
//
//aarc:hotpath
func ValueComposite() entry {
	return entry{key: "x"}
}

type iface interface{ m() }

type boxed struct{ v int }

func (boxed) m() {}

type ptrImpl struct{ v int }

func (*ptrImpl) m() {}

func take(i iface) { _ = i }

//aarc:hotpath
func Boxing() {
	take(boxed{v: 1}) // want `interface boxing`
}

// PointerNoBox passes a pointer: the interface holds the existing
// pointer, nothing is copied to the heap.
//
//aarc:hotpath
func PointerNoBox(p *ptrImpl) {
	take(p)
}

// Transitive is clean itself; the violation sits in the helper it
// calls and is reported there, attributed to this root.
//
//aarc:hotpath
func Transitive(x int) int {
	return helper(x)
}

func helper(x int) int {
	sink = new(int) // want `new`
	return x
}

var sink *int

// CrossPackage calls dep.Dirty, whose allocation arrives via the fact
// file and is reported at this call site.
//
//aarc:hotpath
func CrossPackage() *int {
	return dep.Dirty() // want `call to dep.Dirty which allocates`
}

// CrossPackageTransitive must see Dirty through DirtyTransitive's
// call list.
//
//aarc:hotpath
func CrossPackageTransitive() *int {
	return dep.DirtyTransitive() // want `call to dep.DirtyTransitive which allocates`
}

// CrossPackageClean stays silent.
//
//aarc:hotpath
func CrossPackageClean(x int) int {
	return dep.Clean(x)
}

// cold is not marked and never called from a root: allocate freely.
func cold() []int {
	return make([]int, 64)
}

// Waived allocates deliberately with a reviewed reason.
//
//aarc:hotpath
func Waived() []int {
	//aarc:coldalloc one-time warm-up buffer, amortized to zero
	return make([]int, 4)
}

// EmptyReasonWaiver: a waiver without a reason is a finding.
//
//aarc:hotpath
func EmptyReasonWaiver() []int {
	//aarc:coldalloc
	return make([]int, 4) // want `needs a reason`
}
