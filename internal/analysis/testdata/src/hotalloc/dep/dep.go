// Package dep fakes an imported store-like package: Clean is
// alloc-free, Dirty allocates, and the fact file must carry that
// distinction to importers.
package dep

// Clean is safe to call from a hot path.
func Clean(x int) int {
	return x + 1
}

// Dirty allocates; a hot path calling it must be flagged at the call
// site in the importing package.
func Dirty() *int {
	return new(int)
}

// DirtyTransitive is clean itself but calls Dirty — importers must see
// through one level of in-package indirection via the fact's call
// list.
func DirtyTransitive() *int {
	return Dirty()
}
