// Fixture for regversion: the pinned version matches, but the recorded
// source hash does not — the package changed without a version bump,
// the silent-wrong-answers failure mode.
package stale

import "regversion/search"

const Version = 1

func init() {
	search.Register("stale", Version, nil) // want `method "stale" package source changed since version\.lock was recorded`
}
