// Fixture dependency for regversion: a fake of the project's search
// registry. regversion matches Register by function name + defining
// package *name*, so only the package clause matters.
package search

// Register records a search method implementation under a versioned
// name.
func Register(name string, version int, factory func() any) {}
