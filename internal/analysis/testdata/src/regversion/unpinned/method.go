// Fixture for regversion: a registered method with no version.lock in
// scope has no pin, and dynamic Register arguments defeat pinning
// entirely.
package unpinned

import "regversion/search"

// Version moves when this method's behavior moves.
const Version = 1

func init() {
	search.Register("unpinned", Version, nil) // want `method "unpinned" has no pin in version\.lock`
}

func registerDynamic(name string, v int) {
	search.Register(name, v, nil) // want `search\.Register needs constant name and version arguments`
}
