// Fixture for regversion: the package-local version.lock pins this
// method at version 2, but the literal still says 1.
package mismatch

import "regversion/search"

const Version = 1

func init() {
	search.Register("mismatch", Version, nil) // want `method "mismatch" registers version 1 but version\.lock pins 2`
}
