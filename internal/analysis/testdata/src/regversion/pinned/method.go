// Fixture for regversion's negative case: the test regenerates this
// package's version.lock from the current source hash before running
// the analyzer, so the pin always matches and no diagnostics fire.
package pinned

import "regversion/search"

const Version = 1

func init() {
	search.Register("pinned", Version, nil)
}
