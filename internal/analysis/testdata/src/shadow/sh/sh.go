// Fixture for shadow: report a := / var declaration that shadows a
// same-typed function-scope variable which is still used after the
// inner scope ends. Params, range variables, differently-typed
// shadows, "err", and dead-after-scope outers stay silent.
package sh

func source() error { return nil }

func reportedShadow() int {
	x := 1
	{
		x := 2 // want `declaration of "x" shadows declaration at`
		_ = x
	}
	return x
}

func outerDeadAfterScope() {
	y := 1
	_ = y
	{
		y := 2 // ok: outer y is never used after this scope
		_ = y
	}
}

func errIdiom() error {
	err := source()
	if err := source(); err != nil { // ok: err shadows are idiom
		return err
	}
	return err
}

func paramShadow(n int) int {
	f := func(n int) int { return n } // ok: parameters are never candidates
	return f(n)
}

func differentType() string {
	v := "s"
	{
		v := 1 // ok: different type, so a mixed-up write cannot typecheck
		_ = v
	}
	return v
}

func varStmtShadow() int {
	n := 1
	{
		var n = 2 // want `declaration of "n" shadows declaration at`
		_ = n
	}
	return n
}
