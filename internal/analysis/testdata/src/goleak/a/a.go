// The goleak fixture: goroutines with no reachable stop signal are
// flagged; context/channel/terminating shapes must stay silent.
package a

import "context"

func work()   {}
func use(int) {}

// bareSpinner is the classic leak: an infinite loop nobody can stop.
func bareSpinner() {
	go func() { // want `no reachable stop signal`
		for {
			work()
		}
	}()
}

// ctxSelect is the idiomatic stoppable loop.
func ctxSelect(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// doneChannel stops when the channel closes.
func doneChannel(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

// rangeOverChannel terminates when the producer closes ch.
func rangeOverChannel(ch chan int) {
	go func() {
		for v := range ch {
			use(v)
		}
	}()
}

// straightLine runs off its end: no loop, terminates by itself.
func straightLine() {
	go func() {
		work()
		work()
	}()
}

// namedWithCtx: the spawn site hands a context to the callee.
func namedWithCtx(ctx context.Context) {
	go loop(ctx)
}

func loop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
			work()
		}
	}
}

// namedLeak spawns an in-package function whose body provably spins.
func namedLeak() {
	go spin() // want `no reachable stop signal`
}

func spin() {
	for {
		work()
	}
}

// delegated loops but the helper it calls blocks on a channel — the
// one-hop expansion must see through it.
func delegated(done chan struct{}) {
	d := drainer{done: done}
	go func() {
		for {
			if d.step() {
				return
			}
		}
	}()
}

type drainer struct{ done chan struct{} }

func (d drainer) step() bool {
	select {
	case <-d.done:
		return true
	default:
		return false
	}
}

// waived is a deliberate fire-and-forget with a reviewed reason.
func waived() {
	//aarc:leaky process-lifetime metrics pump, killed with the process
	go spin()
}

// emptyReasonWaiver still fails: a waiver without a reason is a
// finding.
func emptyReasonWaiver() {
	//aarc:leaky
	go spin() // want `needs a reason`
}
