// Fixture for detcanon: functions named CanonicalJSON/Fingerprint (and
// //aarc:canonical-marked ones) root the determinism call graph; the
// nondeterminism sources inside the reachable set must be flagged, and
// the sanctioned escapes (sort-after, map-to-map copy, //aarc:sorted)
// must not.
package fp

import (
	"math/rand"
	"sort"
	"strconv"
	"time"
)

// Fingerprint stamps wall-clock into the hash input — the seeded
// violation from the acceptance checklist.
func Fingerprint(body []byte) string {
	stamp := time.Now().Unix() // want `time\.Now in canonicalization path Fingerprint`
	return strconv.FormatInt(stamp, 10) + string(body) + salt() + sum(rekey(map[string]int{"a": 1}))
}

// salt is reachable from Fingerprint, so its global rand use is inside
// the canonical graph.
func salt() string {
	return strconv.Itoa(rand.Int()) // want `global math/rand source in canonicalization path salt`
}

func CanonicalJSON(m map[string]int) string {
	var out string
	for k := range m { // want `map iteration order can reach canonical output from CanonicalJSON`
		out += k
	}
	return out
}

// rekey only re-keys entries into another map: source order cannot be
// observed, so no diagnostic.
func rekey(src map[string]int) map[string]int {
	dst := make(map[string]int, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// sum aggregates commutatively; the marker records why order is safe.
func sum(m map[string]int) string {
	n := 0
	for _, v := range m { //aarc:sorted commutative aggregation; order-free
		n += v
	}
	return strconv.Itoa(n)
}

// sortedCanonical collects then orders — the sanctioned idiom.
//
//aarc:canonical marker-rooted entry point
func sortedCanonical(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out string
	for _, k := range keys {
		out += k + strconv.Itoa(m[k])
	}
	return out
}

type registry struct{ keys []string }

// Keys returns an unordered listing, like the Store contract.
func (r *registry) Keys() []string { return r.keys }

// listFingerprint folds an unordered listing straight into output.
//
//aarc:canonical fingerprints the registry listing
func listFingerprint(r *registry) string {
	var out string
	for _, k := range r.Keys() { // want `Keys\(\) order is unspecified and reaches canonical output from listFingerprint`
		out += k
	}
	return out
}

// sortedListFingerprint sorts the listing before folding it in.
//
//aarc:canonical sorted listing
func sortedListFingerprint(r *registry) string {
	keys := r.Keys()
	sort.Strings(keys)
	var out string
	for _, k := range keys {
		out += k
	}
	return out
}

// unreachableClock is outside the canonical call graph: time.Now here
// is fine (metrics, TTLs).
func unreachableClock() int64 {
	return time.Now().Unix()
}
