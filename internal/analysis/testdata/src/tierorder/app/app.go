// Fixture for tierorder: wrapper compositions must follow
// Notify ⊃ Tiered ⊃ Breaker ⊃ Retry ⊃ base, resolved through direct
// nesting and single-assignment locals, with Faulty transparent; store
// Puts under err != nil need an //aarc:errpath waiver.
package app

import "tierorder/store"

// inverted is the seeded violation from the acceptance checklist:
// Retry outside Breaker storms the backend on every probe.
func inverted() store.Store {
	return store.NewRetry(store.NewBreaker(store.NewMemory(), 3), 2) // want `store wrapper order violation: NewRetry may not wrap NewBreaker`
}

// canonical is the full stack in its blessed order.
func canonical() store.Store {
	disk, err := store.OpenDisk("/tmp/x")
	if err != nil {
		return store.NewMemory()
	}
	return store.NewNotify(store.NewTiered(store.NewBreaker(store.NewRetry(store.NewMemory(), 2), 3), disk))
}

// chained resolves through single-assignment locals: still canonical.
func chained() store.Store {
	base := store.NewMemory()
	retrier := store.NewRetry(base, 2)
	breaker := store.NewBreaker(retrier, 3)
	return store.NewNotify(breaker)
}

// chainedInverted is the same inversion hidden behind a local.
func chainedInverted() store.Store {
	breaker := store.NewBreaker(store.NewMemory(), 3)
	return store.NewRetry(breaker, 2) // want `store wrapper order violation: NewRetry may not wrap NewBreaker`
}

// faultyTransparent: the chaos layer may sit anywhere without changing
// the composition's rank.
func faultyTransparent() store.Store {
	return store.NewBreaker(store.NewFaulty(store.NewRetry(store.NewMemory(), 2)), 3)
}

// faultyInverted: transparency cuts both ways — Faulty cannot launder
// an inversion.
func faultyInverted() store.Store {
	return store.NewRetry(store.NewFaulty(store.NewBreaker(store.NewMemory(), 3)), 2) // want `store wrapper order violation: NewRetry may not wrap NewBreaker`
}

// doubled: equal ranks are also a violation (outer must strictly
// exceed inner).
func doubled() store.Store {
	return store.NewRetry(store.NewRetry(store.NewMemory(), 1), 1) // want `store wrapper order violation: NewRetry may not wrap NewRetry`
}

// notifyUnderTiered: Notify below Tiered would fire events for
// internal promotes.
func notifyUnderTiered() store.Store {
	return store.NewTiered(store.NewMemory(), store.NewNotify(store.NewMemory())) // want `store wrapper order violation: NewTiered may not wrap NewNotify`
}

// reassigned locals have unknown rank: the analyzer under-approximates
// rather than guessing.
func reassigned(cold bool) store.Store {
	s := store.NewBreaker(store.NewMemory(), 3)
	if cold {
		s = store.NewMemory()
	}
	return store.NewRetry(s, 2) // ok: s reassigned, rank unknown
}

func cacheOnError(s store.Store, err error) {
	if err != nil {
		_ = s.Put("fp", nil) // want `store Put on an error path can cache a failed search`
	}
	if err != nil {
		_ = s.Put("fp", nil) //aarc:errpath torn-write simulation is the point of this chaos path
	}
	_ = s.Put("fp", nil) // ok: not on an error path
}
