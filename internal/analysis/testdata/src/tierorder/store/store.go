// Fixture dependency for tierorder: a fake of the project's store
// package exposing the wrapper constructors the rank table names.
package store

// Store is the minimal wrapped surface.
type Store interface {
	Put(key string, body []byte) error
}

type mem struct{}

func (mem) Put(string, []byte) error { return nil }

// NewMemory is a base tier (rank 0).
func NewMemory() Store { return mem{} }

// OpenDisk is the other base tier (rank 0).
func OpenDisk(dir string) (Store, error) { return mem{}, nil }

// NewRetry wraps s with bounded retries (rank 1).
func NewRetry(s Store, attempts int) Store { return s }

// NewBreaker wraps s with a circuit breaker (rank 2).
func NewBreaker(s Store, threshold int) Store { return s }

// NewTiered composes a fast and a slow tier (rank 3).
func NewTiered(fast, slow Store) Store { return fast }

// NewNotify publishes lifecycle events for mutations (rank 4).
func NewNotify(s Store) Store { return s }

// NewFaulty is the transparent chaos layer: any position, inherits the
// rank of what it wraps.
func NewFaulty(s Store) Store { return s }
