// The nilness fixture: each guaranteed-nil misuse the analyzer must
// catch is paired with a near-miss it must not flag.
package a

type T struct{ x int }

func use(int)  {}
func sink(any) {}
func fill(m *map[string]int) {
	*m = map[string]int{}
}

// derefInNilBranch dereferences inside the branch that just proved the
// pointer nil.
func derefInNilBranch(p *int) int {
	if p == nil {
		return *p // want `nil dereference of p`
	}
	return *p // refined non-nil here: no flag
}

// checkedEarlyReturn is the idiomatic guard: no flag after it.
func checkedEarlyReturn(p *int) int {
	if p == nil {
		return 0
	}
	return *p
}

// zeroValuePointer dereferences a declared-but-never-assigned pointer.
func zeroValuePointer() int {
	var p *int
	return *p // want `nil dereference of p`
}

// selectorOnNil reads a field through a provably nil struct pointer.
func selectorOnNil() int {
	var t *T
	return t.x // want `nil dereference of t.x`
}

// assignedBeforeUse is the near-miss: the zero value is overwritten on
// every path before the dereference.
func assignedBeforeUse(v int) int {
	var p *int
	p = &v
	return *p
}

// nilMapWrite writes into a map that is still its nil zero value.
func nilMapWrite() {
	var m map[string]int
	m["k"] = 1 // want `write to nil map m`
}

// madeMapWrite is fine: make gives a non-nil map.
func madeMapWrite() {
	m := make(map[string]int)
	m["k"] = 1
}

// nilMapRead is legal Go (yields the zero value) and must not be
// flagged.
func nilMapRead() int {
	var m map[string]int
	return m["k"]
}

// nilFuncCall calls through a nil function value.
func nilFuncCall() {
	var f func()
	f() // want `call of nil function f`
}

// guardedFuncCall is the near-miss.
func guardedFuncCall(f func()) {
	if f != nil {
		f()
	}
}

// nilSliceIndex indexes a nil slice (len 0: guaranteed panic).
func nilSliceIndex() int {
	var s []int
	return s[0] // want `index of nil slice s`
}

// appendToNilSlice is legal and must not be flagged.
func appendToNilSlice() []int {
	var s []int
	return append(s, 1)
}

// escapedMap: the address of m escapes to a function that initializes
// it, so the analysis must stop tracking it.
func escapedMap() {
	var m map[string]int
	fill(&m)
	m["k"] = 1 // no flag: &m escaped
}

// capturedPointer: a closure may write p before the dereference runs.
func capturedPointer() int {
	var p *int
	set := func() { v := 1; p = &v }
	set()
	return *p // no flag: captured by the literal
}

// branchMerge: p is nil on one path and non-nil on the other; the
// merged state is unknown and must stay silent.
func branchMerge(c bool, v int) int {
	var p *int
	if c {
		p = &v
	}
	if p != nil {
		return *p
	}
	return 0
}

// loopRefine: the nil check inside the loop re-establishes safety on
// every iteration.
func loopRefine(ps []*int) int {
	total := 0
	for _, p := range ps {
		if p == nil {
			continue
		}
		total += *p
	}
	return total
}

// waived documents a deliberate crash (drills) with a reason.
func waived(p *int) int {
	if p == nil {
		//aarc:nilok deliberate panic: exercised by the recovery drill
		return *p
	}
	return 0
}
