// Package dep fakes an imported serving package with its own mutexes:
// TakeBoth establishes the canonical A-before-B edge that the svc
// fixture's inverted acquisition turns into a cycle via facts.
package dep

import "sync"

type A struct{ Mu sync.Mutex }

type B struct{ Mu sync.Mutex }

// TakeBoth acquires A then B: the canonical order, exported as the
// fact edge (A).Mu → (B).Mu.
func TakeBoth(a *A, b *B) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	b.Mu.Lock()
	b.Mu.Unlock()
}

// LockA acquires only A; callers holding other locks get a call edge
// onto (A).Mu.
func LockA(a *A) {
	a.Mu.Lock()
	a.Mu.Unlock()
}
