// The svc fixture covers the lockorder analyzer's cases: a local
// two-mutex cycle, a sharded self-cycle, a cross-package cycle closed
// through dep's exported fact, near-misses that must stay silent, and
// the waiver marker.
package svc

import (
	"sync"

	"lockorder/dep"
)

type S struct {
	mu1 sync.Mutex
	mu2 sync.Mutex
	a   dep.A
	b   dep.B
}

// forward acquires mu1 then mu2 — one direction of the local cycle.
// The report lands here because this is the cycle's smallest-position
// edge.
func (s *S) forward() {
	s.mu1.Lock()
	defer s.mu1.Unlock()
	s.mu2.Lock() // want `lock order cycle`
	s.mu2.Unlock()
}

// backward closes the cycle: mu2 then mu1.
func (s *S) backward() {
	s.mu2.Lock()
	defer s.mu2.Unlock()
	s.mu1.Lock()
	s.mu1.Unlock()
}

type shard struct{ mu sync.Mutex }

type pool struct{ shards []shard }

// crossShard locks two instances of the same lock class in arbitrary
// index order — the classic sharded deadlock, a self-edge on
// (shard).mu.
func (p *pool) crossShard(i, j int) {
	p.shards[i].mu.Lock()
	defer p.shards[i].mu.Unlock()
	p.shards[j].mu.Lock() // want `lock order cycle`
	p.shards[j].mu.Unlock()
}

// inverted acquires dep's B then A; dep.TakeBoth's fact carries the
// A→B edge, so this closes a cross-package cycle.
func (s *S) inverted() {
	s.b.Mu.Lock()
	defer s.b.Mu.Unlock()
	s.a.Mu.Lock() // want `lock order cycle`
	s.a.Mu.Unlock()
}

type T struct {
	x sync.Mutex
	y sync.Mutex
}

// consistent always goes x before y — no cycle, must stay silent.
func (t *T) consistent() {
	t.x.Lock()
	defer t.x.Unlock()
	t.y.Lock()
	t.y.Unlock()
}

func (t *T) alsoConsistent() {
	t.x.Lock()
	t.y.Lock()
	t.y.Unlock()
	t.x.Unlock()
}

// callEdgeOnly holds its own lock across a dep call: produces call
// edges x→(A).Mu with no inverse anywhere, so no cycle.
func (t *T) callEdgeOnly(a *dep.A) {
	t.x.Lock()
	defer t.x.Unlock()
	dep.LockA(a)
}

type W struct {
	m sync.Mutex
	n sync.Mutex
}

// waived inverts the order but carries a reviewed waiver, so the edge
// is dropped and no cycle forms.
func (w *W) waivedForward() {
	w.m.Lock()
	defer w.m.Unlock()
	w.n.Lock() //aarc:lockorder n is only tried-locked here in production
	w.n.Unlock()
}

func (w *W) waivedBackward() {
	w.n.Lock()
	defer w.n.Unlock()
	w.m.Lock() //aarc:lockorder reviewed: disjoint instances by construction
	w.m.Unlock()
}

type E struct {
	p sync.Mutex
	q sync.Mutex
}

// emptyReason: a waiver without a justification is itself a finding
// (and still drops the edge, like lockscope).
func (e *E) emptyReason() {
	e.p.Lock()
	defer e.p.Unlock()
	//aarc:lockorder
	e.q.Lock() // want `needs a reason`
	e.q.Unlock()
}

func (e *E) emptyReasonBack() {
	e.q.Lock()
	defer e.q.Unlock()
	e.p.Lock() //aarc:lockorder reviewed: never concurrent with emptyReason
	e.p.Unlock()
}

// goDetached spawns a goroutine that takes locks in inverse order on
// its own stack — but since the spawner's held set does not cross the
// go boundary, only the goroutine's own ordering counts, and it is
// internally consistent.
func (t *T) goDetached() {
	t.x.Lock()
	defer t.x.Unlock()
	go func() {
		t.y.Lock()
		t.y.Unlock()
	}()
}
