package tierorder_test

import (
	"testing"

	"aarc/internal/analysis/analysistest"
	"aarc/internal/analysis/tierorder"
)

func TestTierorder(t *testing.T) {
	analysistest.Run(t, "../testdata", tierorder.Analyzer, "tierorder/app")
}
