// Package tierorder checks store wrapper composition against the
// canonical stacking order:
//
//	Notify ⊃ Tiered ⊃ Breaker ⊃ Retry ⊃ base (Memory/Disk)
//
// Each layer's position is load-bearing: Notify outermost so lifecycle
// events fire once per logical mutation (never for Tiered's internal
// promotes or Warm's loads); Breaker outside Retry so one logical
// operation — however many retry attempts it takes — counts once
// against the trip threshold, and an open breaker fast-fails before
// burning retry backoff. Inverting Retry(Breaker(...)) makes every
// probe storm the backend and trips the breaker on attempt counts, the
// exact misconfiguration the PR 6 chaos drills guard against. Faulty
// is a transparent chaos layer and may appear anywhere; it inherits
// the rank of what it wraps.
//
// The check resolves arguments through single-assignment locals, so
// the idiomatic "retrier := NewRetry(...); breaker := NewBreaker(
// retrier, ...)" chains are seen as one composition. A variable
// assigned more than once, a parameter, or a call result has unknown
// rank and is skipped — the analyzer under-approximates rather than
// guessing.
//
// It also flags Put calls on store-typed values inside `err != nil`
// blocks: writing to the cache on an error path is how a failed search
// gets cached, which the service invariant (failed searches are never
// written to any tier) forbids.
package tierorder

import (
	"go/ast"
	"go/types"

	"aarc/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "tierorder",
	Doc:  "check store wrapper composition order and Put-on-error-path caching",
	Run:  run,
}

// rank orders the wrapper constructors; outer must strictly exceed
// inner. Faulty is transparent (rank of its first argument).
var rank = map[string]int{
	"NewNotify":  4,
	"NewTiered":  3,
	"NewBreaker": 2,
	"NewRetry":   1,
	"NewMemory":  0,
	"OpenDisk":   0,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCompositions(pass, fd)
			checkErrorPathPuts(pass, fd)
		}
	}
	return nil
}

// storeCtor returns the rank-table name of the store constructor a call
// resolves to, if any. Matches both cross-package store.NewX calls and
// NewX inside the store package itself.
func storeCtor(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := analysis.FuncOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "store" {
		return "", false
	}
	name := fn.Name()
	if _, ok := rank[name]; ok || name == "NewFaulty" {
		return name, true
	}
	return "", false
}

func checkCompositions(pass *analysis.Pass, fd *ast.FuncDecl) {
	// defs: single-assignment locals -> the constructor call that
	// produced them. Multi-assigned names get poisoned to nil.
	defs := make(map[types.Object]*ast.CallExpr)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			if _, seen := defs[obj]; seen {
				defs[obj] = nil // reassigned: unknown rank
				continue
			}
			if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
				if _, isCtor := storeCtor(pass, call); isCtor {
					defs[obj] = call
					continue
				}
			}
			defs[obj] = nil
		}
		return true
	})

	// rankOf resolves an argument expression to a wrapper rank:
	// directly a constructor call, or a single-assignment local bound
	// to one. ok is false when the rank is unknowable.
	var rankOf func(e ast.Expr) (int, string, bool)
	rankOf = func(e ast.Expr) (int, string, bool) {
		e = ast.Unparen(e)
		switch e := e.(type) {
		case *ast.CallExpr:
			name, isCtor := storeCtor(pass, e)
			if !isCtor {
				return 0, "", false
			}
			if name == "NewFaulty" {
				if len(e.Args) > 0 {
					return rankOf(e.Args[0])
				}
				return 0, "", false
			}
			return rank[name], name, true
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[e]
			if obj == nil {
				return 0, "", false
			}
			if call := defs[obj]; call != nil {
				return rankOf(call)
			}
		}
		return 0, "", false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, isCtor := storeCtor(pass, call)
		if !isCtor || name == "NewFaulty" {
			return true
		}
		outer := rank[name]
		// The wrapped store arguments: first arg for the single-inner
		// wrappers, both for Tiered.
		var inner []ast.Expr
		switch name {
		case "NewNotify", "NewBreaker", "NewRetry":
			if len(call.Args) > 0 {
				inner = call.Args[:1]
			}
		case "NewTiered":
			inner = call.Args
		}
		for _, arg := range inner {
			if r, innerName, ok := rankOf(arg); ok && r >= outer {
				pass.Reportf(call.Pos(),
					"store wrapper order violation: %s may not wrap %s (canonical order: Notify ⊃ Tiered ⊃ Breaker ⊃ Retry ⊃ base)",
					name, innerName)
			}
		}
		return true
	})
}

// checkErrorPathPuts flags store Put calls lexically inside a block
// guarded by an `err != nil` comparison.
func checkErrorPathPuts(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !isErrNotNil(pass, ifs.Cond) {
			return true
		}
		ast.Inspect(ifs.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.FuncOf(pass.TypesInfo, call)
			if fn == nil || fn.Name() != "Put" || fn.Signature().Recv() == nil {
				return true
			}
			if p := fn.Pkg(); p == nil || p.Name() != "store" {
				return true
			}
			if m, ok := pass.Markers().At(pass.Fset, call.Pos(), "errpath"); ok {
				if m.Arg == "" {
					pass.Reportf(call.Pos(), "//aarc:errpath marker needs a reason")
				}
				return true
			}
			pass.Reportf(call.Pos(), "store Put on an error path can cache a failed search; mark //aarc:errpath <reason> if the write is deliberate")
			return true
		})
		return true
	})
}

func isErrNotNil(pass *analysis.Pass, cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op.String() != "!=" {
		return false
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if t := pass.TypesInfo.TypeOf(side); t != nil && t.String() == "error" {
			return true
		}
	}
	return false
}
