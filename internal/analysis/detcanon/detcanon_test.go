package detcanon_test

import (
	"testing"

	"aarc/internal/analysis/analysistest"
	"aarc/internal/analysis/detcanon"
)

func TestDetcanon(t *testing.T) {
	analysistest.Run(t, "../testdata", detcanon.Analyzer, "detcanon/fp")
}
