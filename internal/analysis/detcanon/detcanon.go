// Package detcanon checks that everything feeding the content-addressed
// cache keys is deterministic. Fingerprints are hashes over canonical
// bytes (workflow.CanonicalJSON, search.Options.CanonicalJSON, the
// service's key construction); one byte of nondeterminism silently
// splits identical work across cache entries, and a nondeterministic
// *input* to the hash breaks the restart/warm-start guarantees the
// store tiers rely on. The analyzer roots a call graph at every
// function named CanonicalJSON or Fingerprint (plus any function whose
// doc comment carries //aarc:canonical) and, within the reachable set,
// flags the nondeterminism sources that have actually bitten:
//
//   - time.Now — wall-clock in a content hash
//   - package-level math/rand and math/rand/v2 functions — the shared,
//     unseeded source (methods on an explicitly seeded *rand.Rand are
//     fine and are how the runners work)
//   - range over a map whose iteration order can escape into output,
//     unless the loop is a map-to-map copy (re-keyed, so order-free),
//     the function sorts after the loop, or the site carries an
//     //aarc:sorted <reason> marker
//   - Keys() calls — store key listings are unordered by contract —
//     with the same sort-after/marker escape hatches
package detcanon

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"aarc/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detcanon",
	Doc:  "flag nondeterminism reachable from the fingerprint/canonicalization call graph",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Collect function declarations and their types.Func objects.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}

	// Roots: canonicalization entry points by name or marker.
	var work []*types.Func
	for obj, fd := range decls {
		if isRoot(fd) {
			work = append(work, obj)
		}
	}
	if len(work) == 0 {
		return nil
	}

	// Reachability over intra-package static calls (and function
	// values referenced from a reachable body — passing a function as
	// a value can still execute it inside the canonical path).
	reachable := make(map[*types.Func]bool)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if reachable[fn] {
			continue
		}
		reachable[fn] = true
		fd := decls[fn]
		if fd == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if callee, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
				if _, local := decls[callee]; local && !reachable[callee] {
					work = append(work, callee)
				}
			}
			return true
		})
	}

	for fn := range reachable {
		checkFunc(pass, decls[fn])
	}
	return nil
}

func isRoot(fd *ast.FuncDecl) bool {
	switch fd.Name.Name {
	case "CanonicalJSON", "Fingerprint":
		return true
	}
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.HasPrefix(c.Text, "//aarc:canonical") {
				return true
			}
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	markers := pass.Markers()
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, fd, n)
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if _, ok := markers.At(pass.Fset, n.Pos(), "sorted"); ok {
				return true
			}
			if isMapToMapCopy(pass, n) || sortsAfter(pass, fd, n.Pos()) {
				return true
			}
			pass.Reportf(n.Pos(), "map iteration order can reach canonical output from %s; sort the keys first or mark //aarc:sorted <reason>", fd.Name.Name)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	fn := analysis.FuncOf(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch analysis.PkgPathOf(fn) {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(), "time.Now in canonicalization path %s: fingerprints must be pure functions of content", fd.Name.Name)
		}
	case "math/rand", "math/rand/v2":
		if fn.Signature().Recv() == nil {
			pass.Reportf(call.Pos(), "global math/rand source in canonicalization path %s: use an explicitly seeded generator outside the canonical bytes", fd.Name.Name)
		}
	}
	// Keys() listings are unordered by the Store contract.
	if fn.Name() == "Keys" && fn.Signature().Recv() != nil {
		if _, ok := pass.Markers().At(pass.Fset, call.Pos(), "sorted"); ok {
			return
		}
		if sortsAfter(pass, fd, call.Pos()) {
			return
		}
		pass.Reportf(call.Pos(), "Keys() order is unspecified and reaches canonical output from %s; sort the result or mark //aarc:sorted <reason>", fd.Name.Name)
	}
}

// isMapToMapCopy reports whether every statement in the range body only
// assigns into map index expressions — re-keying entries into another
// map, where source order cannot be observed.
func isMapToMapCopy(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok {
			return false
		}
		for _, lhs := range as.Lhs {
			ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok {
				return false
			}
			t := pass.TypesInfo.TypeOf(ix.X)
			if t == nil {
				return false
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return false
			}
		}
	}
	return true
}

// sortsAfter reports whether fd calls a sorting function (sort.* or
// slices.Sort*) after pos — the "collect then order" idiom that makes
// an unordered iteration or listing deterministic before it escapes.
func sortsAfter(pass *analysis.Pass, fd *ast.FuncDecl, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos || found {
			return !found
		}
		fn := analysis.FuncOf(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		switch analysis.PkgPathOf(fn) {
		case "sort":
			found = true
		case "slices":
			if strings.HasPrefix(fn.Name(), "Sort") {
				found = true
			}
		}
		return !found
	})
	return found
}
