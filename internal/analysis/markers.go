package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Marker is one //aarc:<name> <argument> comment. Markers are the
// suite's waiver/annotation vocabulary:
//
//	//aarc:detached <reason>  — blessed context detachment site (ctxflow)
//	//aarc:sorted <reason>    — map/Keys iteration proven order-safe (detcanon)
//	//aarc:locked <reason>    — call under a mutex that owns the callee (lockscope)
//	//aarc:errpath <reason>   — deliberate store write on an error path (tierorder)
//	//aarc:canonical          — extra root for the determinism call graph (detcanon)
//	//aarc:lockorder <reason> — blessed lock-acquisition edge (lockorder)
//	//aarc:nilok <reason>     — dereference proven safe (nilness)
//	//aarc:leaky <reason>     — goroutine allowed to outlive its spawner (goleak)
//	//aarc:coldalloc <reason> — allocation allowed on a hot path (hotalloc)
//	//aarc:hotpath            — root of a zero-alloc call tree (hotalloc)
//
// A marker waives the diagnostic on its own line or the line directly
// below, so both end-of-line and line-above placement work. Every
// waiver marker requires a non-empty reason: the argument is the
// reviewable justification, and an empty one is itself a finding.
//
// KnownMarkers is the closed set of marker kinds; the aarcvet driver
// reports any //aarc: comment outside it, so a typo like //aarc:lokced
// is a finding instead of a silently dead waiver.
type Marker struct {
	Name string
	Arg  string
	Line int
	File string
	Pos  token.Pos
}

// KnownMarkers is the marker vocabulary. Adding an analyzer with a new
// waiver kind means adding it here, or every use of the new marker is
// itself reported.
var KnownMarkers = map[string]bool{
	"detached":  true,
	"sorted":    true,
	"locked":    true,
	"errpath":   true,
	"canonical": true,
	"lockorder": true,
	"nilok":     true,
	"leaky":     true,
	"coldalloc": true,
	"hotpath":   true,
}

// MarkerIndex holds every //aarc: marker in a package, keyed by
// file:line for position lookups.
type MarkerIndex struct {
	byLine map[string][]Marker
}

const markerPrefix = "//aarc:"

// IndexMarkers scans the files' comments for //aarc: markers. Files
// must have been parsed with parser.ParseComments.
func IndexMarkers(fset *token.FileSet, files []*ast.File) *MarkerIndex {
	idx := &MarkerIndex{byLine: make(map[string][]Marker)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, markerPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, markerPrefix)
				name, arg, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				m := Marker{
					Name: name,
					Arg:  strings.TrimSpace(arg),
					Line: pos.Line,
					File: pos.Filename,
					Pos:  c.Pos(),
				}
				key := markerKey(pos.Filename, pos.Line)
				idx.byLine[key] = append(idx.byLine[key], m)
			}
		}
	}
	return idx
}

func markerKey(file string, line int) string {
	// line numbers are small; this beats a struct key for map reuse.
	return file + "\x00" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Unknown returns every marker whose kind is outside KnownMarkers, in
// file/line order. The aarcvet driver reports these so a typoed waiver
// fails the build instead of waiving nothing.
func (idx *MarkerIndex) Unknown() []Marker {
	var out []Marker
	for _, ms := range idx.byLine {
		for _, m := range ms {
			if !KnownMarkers[m.Name] {
				out = append(out, m)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// At returns the named marker covering pos: on the same line as pos or
// on the line directly above it.
func (idx *MarkerIndex) At(fset *token.FileSet, pos token.Pos, name string) (Marker, bool) {
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, m := range idx.byLine[markerKey(p.Filename, line)] {
			if m.Name == name {
				return m, true
			}
		}
	}
	return Marker{}, false
}
