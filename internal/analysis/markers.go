package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// A Marker is one //aarc:<name> <argument> comment. Markers are the
// suite's waiver/annotation vocabulary:
//
//	//aarc:detached <reason>  — blessed context detachment site (ctxflow)
//	//aarc:sorted <reason>    — map/Keys iteration proven order-safe (detcanon)
//	//aarc:locked <reason>    — call under a mutex that owns the callee (lockscope)
//	//aarc:errpath <reason>   — deliberate store write on an error path (tierorder)
//	//aarc:canonical          — extra root for the determinism call graph (detcanon)
//
// A marker waives the diagnostic on its own line or the line directly
// below, so both end-of-line and line-above placement work. Every
// waiver marker requires a non-empty reason: the argument is the
// reviewable justification, and an empty one is itself a finding.
type Marker struct {
	Name string
	Arg  string
	Line int
	File string
}

// MarkerIndex holds every //aarc: marker in a package, keyed by
// file:line for position lookups.
type MarkerIndex struct {
	byLine map[string][]Marker
}

const markerPrefix = "//aarc:"

// IndexMarkers scans the files' comments for //aarc: markers. Files
// must have been parsed with parser.ParseComments.
func IndexMarkers(fset *token.FileSet, files []*ast.File) *MarkerIndex {
	idx := &MarkerIndex{byLine: make(map[string][]Marker)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, markerPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, markerPrefix)
				name, arg, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				m := Marker{
					Name: name,
					Arg:  strings.TrimSpace(arg),
					Line: pos.Line,
					File: pos.Filename,
				}
				key := markerKey(pos.Filename, pos.Line)
				idx.byLine[key] = append(idx.byLine[key], m)
			}
		}
	}
	return idx
}

func markerKey(file string, line int) string {
	// line numbers are small; this beats a struct key for map reuse.
	return file + "\x00" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// At returns the named marker covering pos: on the same line as pos or
// on the line directly above it.
func (idx *MarkerIndex) At(fset *token.FileSet, pos token.Pos, name string) (Marker, bool) {
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, m := range idx.byLine[markerKey(p.Filename, line)] {
			if m.Name == name {
				return m, true
			}
		}
	}
	return Marker{}, false
}
