package ctxflow_test

import (
	"testing"

	"aarc/internal/analysis/analysistest"
	"aarc/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "../testdata", ctxflow.Analyzer,
		"ctxflow/service", // request path: detachment + entry-point rules
		"ctxflow/harness", // off the request path: root contexts are fine
	)
}
