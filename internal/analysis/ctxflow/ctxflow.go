// Package ctxflow checks the serving stack's context-propagation
// invariant (DESIGN.md §7/§11): request-path code must thread the
// caller's context, and detaching from it — context.WithoutCancel, or
// minting a fresh root with context.Background/TODO — is legal only at
// blessed sites carrying an //aarc:detached <reason> marker. The
// blessed sites are load-bearing: the singleflight miss path detaches
// so a client disconnect cannot poison the shared cache entry, and the
// refresh workers detach so background re-searches outlive any request.
// An unmarked detachment is either a bug (a cancellation that should
// propagate and doesn't) or an undocumented invariant; both should
// fail vet.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"aarc/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flag unmarked context detachment and context-less entry points in request-path packages",
	Run:  run,
}

// requestPath lists the packages on the serving request path, by final
// import-path element. Everything else (the experiment harness, the
// workload generators, cmd/ mains' roots) legitimately mints root
// contexts.
var requestPath = map[string]bool{
	"service":    true,
	"search":     true,
	"store":      true,
	"drift":      true,
	"event":      true,
	"inputaware": true,
	"core":       true,
	"bo":         true,
	"maff":       true,
	"naive":      true,
}

// mustAcceptContext lists exported entry-point names that perform
// search/store/evaluate work and therefore must accept a
// context.Context (their work is cancellable end to end).
var mustAcceptContext = map[string]bool{
	"Search":           true,
	"Configure":        true,
	"ConfigureClasses": true,
	"ConfigureBatch":   true,
	"Dispatch":         true,
	"Watch":            true,
}

func isRequestPath(pkg *types.Package) bool {
	path := pkg.Path()
	if path == "aarc" { // the module-root facade
		return true
	}
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return requestPath[path]
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Name(), "_test") {
		return nil
	}
	reqPath := isRequestPath(pass.Pkg)
	isMain := pass.Pkg.Name() == "main"
	markers := pass.Markers()

	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, markers, n, reqPath, isMain)
			case *ast.FuncDecl:
				if reqPath {
					checkEntryPoint(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, markers *analysis.MarkerIndex, call *ast.CallExpr, reqPath, isMain bool) {
	fn := analysis.FuncOf(pass.TypesInfo, call)
	if analysis.PkgPathOf(fn) != "context" {
		return
	}
	var rule string
	switch fn.Name() {
	case "WithoutCancel":
		// Detachment from a live context: forbidden unmarked anywhere
		// in non-test code, including cmd/ mains.
		rule = "context.WithoutCancel detaches from the caller's cancellation"
	case "Background", "TODO":
		// Fresh roots: forbidden unmarked on the request path. Package
		// main owns the process root, so it is exempt.
		if !reqPath || isMain {
			return
		}
		rule = "context." + fn.Name() + "() mints a root context on the request path"
	default:
		return
	}
	m, ok := markers.At(pass.Fset, call.Pos(), "detached")
	if !ok {
		pass.Reportf(call.Pos(), "%s; propagate the caller's ctx or mark the site //aarc:detached <reason>", rule)
		return
	}
	if m.Arg == "" {
		pass.Reportf(call.Pos(), "//aarc:detached marker needs a reason")
	}
}

func checkEntryPoint(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || !mustAcceptContext[fd.Name.Name] || fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		if isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			return
		}
	}
	// Only entry points that actually drive cancellable machinery need
	// a context: a body that never calls anything accepting one (a pure
	// table lookup like inputaware's Engine.Dispatch) is exempt.
	if fd.Body == nil || !callsContextAcceptor(pass, fd.Body) {
		return
	}
	pass.Reportf(fd.Name.Pos(), "exported %s drives context-accepting search/store/evaluate machinery but accepts no context.Context itself", fd.Name.Name)
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// callsContextAcceptor reports whether the body calls any function
// that has a context.Context parameter — i.e. there was cancellable
// work to thread a context into.
func callsContextAcceptor(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.FuncOf(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		params := fn.Signature().Params()
		for i := 0; i < params.Len(); i++ {
			if isContextType(params.At(i).Type()) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
