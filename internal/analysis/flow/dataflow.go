package flow

// The worklist engine. Analyzers describe a join semilattice and a
// per-block transfer function; the engine iterates to a fixpoint over
// the CFG. Determinism matters as much as correctness here — aarcvet
// diffs its own output in CI — so the worklist is FIFO over block
// indexes and Join arguments always arrive in predecessor-index order.

// A Lattice describes the abstract-state domain of one analysis: a
// join semilattice with a bottom element. Join must be commutative,
// associative and idempotent; Equal must be a congruence for Join.
type Lattice[T any] interface {
	// Bottom is the "no information yet" element, the initial in-state
	// of every block except entry.
	Bottom() T
	// Join combines the states flowing in from two predecessors.
	Join(a, b T) T
	// Equal reports whether two states carry the same information;
	// the fixpoint loop stops re-queuing a block when its out-state
	// stops changing under Equal.
	Equal(a, b T) bool
}

// An Analysis is one forward dataflow problem over a Graph.
type Analysis[T any] struct {
	Lattice Lattice[T]

	// Transfer produces the block's out-state from its in-state. It
	// must be monotone in the in-state or the fixpoint may not exist;
	// MaxIter/Widen are the safety nets when it is not, or when the
	// lattice has infinite ascending chains.
	Transfer func(b *Block, in T) T

	// Edge, when non-nil, refines the state flowing along one edge —
	// the hook branch-condition analyses (nilness) use: on the true
	// edge of `x == nil` the state can assert x is nil even though the
	// block's out-state cannot.
	Edge func(from, to *Block, out T) T

	// Entry is the in-state of the entry block (parameter facts,
	// typically). The zero T is used when the lattice's Bottom is the
	// right entry state.
	Entry T

	// MaxIter bounds the number of block visits; 0 means the default
	// (32 × blocks), generous for any monotone analysis over these
	// CFGs. On overrun the engine stops and returns the current
	// (sound-if-monotone, possibly unrefined) states rather than
	// spinning.
	MaxIter int

	// Widen, when non-nil, replaces plain Join on re-visits of a block
	// already seen: next = Widen(previous-in, joined-in). Lattices with
	// infinite ascending chains (intervals, counters) use it to force
	// termination by jumping to an upper bound.
	Widen func(prev, next T) T
}

// Result holds the fixpoint: In[i] and Out[i] are the states at entry
// and exit of Blocks[i].
type Result[T any] struct {
	In, Out []T
	// Converged is false when MaxIter stopped the iteration before a
	// fixpoint; states are then whatever the last visit produced.
	Converged bool
	// Iterations is the number of block visits performed.
	Iterations int
}

// Forward runs the analysis over g to fixpoint and returns the
// per-block states.
func (a Analysis[T]) Forward(g *Graph) Result[T] {
	n := len(g.Blocks)
	res := Result[T]{In: make([]T, n), Out: make([]T, n), Converged: true}
	for i := range res.In {
		res.In[i] = a.Lattice.Bottom()
		res.Out[i] = a.Lattice.Bottom()
	}
	res.In[0] = a.Entry

	preds := g.Preds()
	maxIter := a.MaxIter
	if maxIter == 0 {
		maxIter = 32 * n
	}

	// FIFO worklist over block indexes, seeded in index order; inQueue
	// dedupes so a block is pending at most once.
	queue := make([]int, 0, n)
	inQueue := make([]bool, n)
	visited := make([]bool, n)
	push := func(i int) {
		if !inQueue[i] {
			inQueue[i] = true
			queue = append(queue, i)
		}
	}
	for i := 0; i < n; i++ {
		push(i)
	}

	for len(queue) > 0 {
		if res.Iterations >= maxIter {
			res.Converged = false
			break
		}
		res.Iterations++
		i := queue[0]
		queue = queue[1:]
		inQueue[i] = false
		b := g.Blocks[i]

		in := res.In[i]
		if i != 0 {
			in = a.Lattice.Bottom()
			for _, p := range preds[i] {
				out := res.Out[p.Index]
				if a.Edge != nil {
					out = a.Edge(p, b, out)
				}
				in = a.Lattice.Join(in, out)
			}
			if a.Widen != nil && visited[i] {
				in = a.Widen(res.In[i], in)
			}
		}
		visited[i] = true
		res.In[i] = in

		out := a.Transfer(b, in)
		if a.Lattice.Equal(out, res.Out[i]) {
			continue
		}
		res.Out[i] = out
		for _, s := range b.Succs {
			push(s.Index)
		}
	}
	return res
}
