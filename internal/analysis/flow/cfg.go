// Package flow is the dataflow layer under the aarcvet analyzers: a
// control-flow graph and SSA-lite IR built from go/ast + go/types with
// nothing outside the standard library. DESIGN.md §13 gated the stock
// SSA-based analyzers (nilness, unusedwrite) out as having "no
// stdlib-only equivalent"; this package is that equivalent, scoped to
// what the suite's interprocedural checks actually need:
//
//   - a CFG per function body (basic blocks with edges from
//     if/for/range/switch/select/goto/labels; return and panic edge to
//     the exit block; defers are collected for exit-time analysis);
//   - a generic worklist dataflow engine over caller-supplied join
//     semilattices, with per-edge refinement (branch conditions) and a
//     widening hook so infinite-ascending-chain lattices terminate;
//   - def-use chains: reaching definitions computed on the engine,
//     folded into per-use chains;
//   - a per-package call graph whose per-function summaries — combined
//     with the unitchecker's cross-package fact files — let analyzers
//     propagate facts across functions and packages.
//
// Deliberately omitted relative to x/tools/go/ssa: no phi nodes, no
// value numbering, no instruction rewriting. The analyzers here need
// "which abstract state can reach this statement", not a full IR, and
// the AST statement is kept as the unit of transfer so diagnostics
// point at real source positions.
package flow

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// A Block is one basic block: a maximal straight-line statement
// sequence. Statements appear in source order; control transfers only
// at the end of the block, along Succs.
type Block struct {
	// Index is the block's position in Graph.Blocks; 0 is the entry
	// block and 1 the exit block.
	Index int

	// Kind labels why the block exists ("entry", "exit", "if.then",
	// "for.body", ...) — diagnostic and golden-test sugar, not
	// semantics.
	Kind string

	// Stmts are the block's statements in source order. Branch and
	// loop headers keep their init/condition expressions out of Stmts;
	// see Cond.
	Stmts []ast.Stmt

	// Cond, when non-nil, is the boolean condition the block branches
	// on: Succs[0] is the true edge and Succs[1] the false edge. Blocks
	// without a Cond make no such guarantee about Succs order.
	Cond ast.Expr

	// Succs are the blocks control may transfer to next.
	Succs []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks holds every block; Blocks[0] is the entry and Blocks[1]
	// the exit. Unreachable blocks (code after return, empty branch
	// joins) stay in the slice with no predecessors.
	Blocks []*Block

	// Defers are the body's defer statements in source order. Their
	// calls run at every exit edge in LIFO order; analyses that care
	// (lock-set, cleanup checks) process them against the exit state.
	Defers []*ast.DeferStmt
}

// Entry returns the entry block.
func (g *Graph) Entry() *Block { return g.Blocks[0] }

// Exit returns the exit block, the target of every return and panic.
func (g *Graph) Exit() *Block { return g.Blocks[1] }

// Preds returns the predecessor lists of every block, indexed like
// Blocks. Computed on demand; the builder maintains only Succs.
func (g *Graph) Preds() [][]*Block {
	preds := make([][]*Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b)
		}
	}
	return preds
}

// New builds the CFG of one function body. A nil body (declared
// externally, e.g. assembly) yields a two-block graph with entry wired
// straight to exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	entry := b.newBlock("entry")
	b.newBlock("exit")
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(b.g.Exit())
	b.resolveGotos()
	return b.g
}

// builder threads the current block and the break/continue/label
// context through a recursive statement walk.
type builder struct {
	g   *Graph
	cur *Block // nil after an unconditional transfer (return, goto)

	breaks    []*Block          // innermost-last break targets
	continues []*Block          // innermost-last continue targets
	labels    map[string]*label // named loop/label targets
	gotos     []pendingGoto
}

type label struct {
	block     *Block // the labeled statement's block (goto target)
	breakTo   *Block // break L target, nil until the labeled loop is entered
	continues *Block // continue L target, nil for non-loops
}

type pendingGoto struct {
	from *Block
	name string
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// current returns the block statements are flowing into, materializing
// an unreachable block after a terminator so later statements still
// land somewhere (they are dead code, kept for analysis completeness).
func (b *builder) current() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

// jump wires the current block (if any) to target and leaves the
// builder with no current block. A nil target (a branch with no legal
// destination, e.g. malformed source) drops the edge rather than
// poisoning the graph.
func (b *builder) jump(target *Block) {
	if b.cur != nil && target != nil {
		b.cur.Succs = append(b.cur.Succs, target)
	}
	b.cur = nil
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, "")
	case *ast.RangeStmt:
		b.rangeStmt(s, "")
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body, "switch")
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body, "typeswitch")
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.ReturnStmt:
		b.current().Stmts = append(b.current().Stmts, s)
		b.jump(b.g.Exit())
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.current().Stmts = append(b.current().Stmts, s)
	case *ast.ExprStmt:
		b.current().Stmts = append(b.current().Stmts, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isPanic(call) {
			// panic unwinds: edge to exit, nothing falls through.
			b.jump(b.g.Exit())
		}
	default:
		// Assign, Decl, Send, IncDec, Go, Empty...: straight-line.
		b.current().Stmts = append(b.current().Stmts, s)
	}
}

// isPanic recognizes a call to the predeclared panic. Resolution is
// syntactic (an unshadowed identifier); a user-declared panic function
// would be misread, which no project package does.
func isPanic(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.current()
	head.Cond = s.Cond
	then := b.newBlock("if.then")
	head.Succs = append(head.Succs, then)
	done := b.newBlock("if.done")

	b.cur = then
	b.stmtList(s.Body.List)
	b.jump(done)

	if s.Else != nil {
		els := b.newBlock("if.else")
		head.Succs = append(head.Succs, els)
		b.cur = els
		b.stmt(s.Else)
		b.jump(done)
	} else {
		head.Succs = append(head.Succs, done)
	}
	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt, labelName string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	b.jump(head)
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	if s.Cond != nil {
		head.Cond = s.Cond
		head.Succs = append(head.Succs, body, done)
	} else {
		head.Succs = append(head.Succs, body)
	}

	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
		b.cur = post
		b.stmt(s.Post)
		b.jump(head)
	}

	b.pushLoop(done, post, labelName)
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(post)
	b.popLoop(labelName)
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, labelName string) {
	head := b.newBlock("range.head")
	// The range expression (and per-iteration assignment) lives in the
	// head so analyses see it evaluated before any body iteration.
	head.Stmts = append(head.Stmts, s)
	b.jump(head)
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	head.Succs = append(head.Succs, body, done)

	b.pushLoop(done, head, labelName)
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(head)
	b.popLoop(labelName)
	b.cur = done
}

// switchStmt handles both expression and type switches: the header
// evaluates init/tag, each case body is a successor, and a missing
// default adds a fall-out edge to done. Fallthrough edges the previous
// case body into the next one.
func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, kind string) {
	if init != nil {
		b.stmt(init)
	}
	head := b.current()
	if tag != nil {
		head.Stmts = append(head.Stmts, &ast.ExprStmt{X: tag})
	}
	if assign != nil {
		head.Stmts = append(head.Stmts, assign)
	}
	done := b.newBlock(kind + ".done")

	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.newBlock(kind + ".case")
		head.Succs = append(head.Succs, blk)
		caseBlocks = append(caseBlocks, blk)
		clauses = append(clauses, cc)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		head.Succs = append(head.Succs, done)
	}

	b.pushSwitch(done)
	for i, cc := range clauses {
		b.cur = caseBlocks[i]
		// fallthrough transfers into the next case's block; detect it
		// as the clause's last statement (the only legal position).
		fall := false
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fall = true
			}
		}
		b.stmtList(cc.Body)
		if fall && i+1 < len(caseBlocks) {
			b.jump(caseBlocks[i+1])
		} else {
			b.jump(done)
		}
	}
	b.popSwitch()
	b.cur = done
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	head := b.current()
	done := b.newBlock("select.done")
	b.pushSwitch(done)
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("select.case")
		head.Succs = append(head.Succs, blk)
		b.cur = blk
		if cc.Comm != nil {
			blk.Stmts = append(blk.Stmts, cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jump(done)
	}
	b.popSwitch()
	// A select with no cases blocks forever: no edge out of head.
	b.cur = done
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	blk := b.newBlock("label." + s.Label.Name)
	b.jump(blk)
	b.cur = blk
	if b.labels == nil {
		b.labels = make(map[string]*label)
	}
	b.labels[s.Label.Name] = &label{block: blk}
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, s.Label.Name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, s.Label.Name)
	default:
		b.stmt(s.Stmt)
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.current().Stmts = append(b.current().Stmts, s)
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if l := b.labels[s.Label.Name]; l != nil && l.breakTo != nil {
				b.jump(l.breakTo)
				return
			}
		}
		if n := len(b.breaks); n > 0 {
			b.jump(b.breaks[n-1])
			return
		}
		b.cur = nil
	case token.CONTINUE:
		if s.Label != nil {
			if l := b.labels[s.Label.Name]; l != nil && l.continues != nil {
				b.jump(l.continues)
				return
			}
		}
		// Skip the nil placeholders switch/select push: continue always
		// targets the innermost enclosing *loop*.
		for i := len(b.continues) - 1; i >= 0; i-- {
			if b.continues[i] != nil {
				b.jump(b.continues[i])
				return
			}
		}
		b.cur = nil
	case token.GOTO:
		if s.Label != nil {
			b.gotos = append(b.gotos, pendingGoto{from: b.current(), name: s.Label.Name})
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Edge added by switchStmt; the statement itself is recorded.
	}
}

func (b *builder) pushLoop(breakTo, continueTo *Block, labelName string) {
	b.breaks = append(b.breaks, breakTo)
	b.continues = append(b.continues, continueTo)
	if labelName != "" {
		if l := b.labels[labelName]; l != nil {
			l.breakTo, l.continues = breakTo, continueTo
		}
	}
}

func (b *builder) popLoop(labelName string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	_ = labelName
}

// pushSwitch makes done the break target without touching continue
// (continue inside a switch still targets the enclosing loop).
func (b *builder) pushSwitch(done *Block) {
	b.breaks = append(b.breaks, done)
	b.continues = append(b.continues, nil)
}

func (b *builder) popSwitch() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// resolveGotos wires pending goto edges once every label's block
// exists (forward gotos).
func (b *builder) resolveGotos() {
	for _, g := range b.gotos {
		if l := b.labels[g.name]; l != nil {
			g.from.Succs = append(g.from.Succs, l.block)
		}
	}
}

// String renders the graph in the deterministic text form the golden
// tests compare: one line per block with its kind, statements and
// successor indexes.
func (g *Graph) String() string {
	return g.format(nil)
}

// Format is String with positions resolved through fset (unused by the
// golden tests, useful when debugging a real package's CFG).
func (g *Graph) Format(fset *token.FileSet) string {
	return g.format(fset)
}

func (g *Graph) format(fset *token.FileSet) string {
	if fset == nil {
		fset = token.NewFileSet()
	}
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%d %s", b.Index, b.Kind)
		if len(b.Stmts) > 0 {
			sb.WriteString(" [")
			for i, s := range b.Stmts {
				if i > 0 {
					sb.WriteString("; ")
				}
				sb.WriteString(renderNode(fset, s))
			}
			sb.WriteString("]")
		}
		if b.Cond != nil {
			fmt.Fprintf(&sb, " if %s", renderNode(fset, b.Cond))
		}
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " %d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func renderNode(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	out := buf.String()
	out = strings.ReplaceAll(out, "\n", " ")
	out = strings.ReplaceAll(out, "\t", "")
	return out
}
