package flow

// The call-graph builder. aarcvet runs one package at a time under the
// go vet protocol, so the graph is per-package: nodes are this
// package's function declarations, edges are the statically resolvable
// calls they make — including calls into other packages, which become
// leaf nodes carrying only a name. Cross-package closure happens in
// the analyzers, which export per-function summaries as unitchecker
// facts and splice the imported packages' graphs in by name.
//
// Function-literal bodies are attributed to the enclosing declaration:
// a goroutine or callback launched inside a method acquires locks and
// allocates on behalf of that method, and the fact granularity (one
// summary per declared function) follows the call sites an importing
// package can actually name.

import (
	"go/ast"
	"go/types"
	"sort"
)

// A Node is one declared function or method and the calls beneath it.
type Node struct {
	// Func is the declared object; nil for external callees known only
	// by name.
	Func *types.Func
	// Decl is the declaration; nil for package "init" bodies collapsed
	// into the synthetic init node and for external callees.
	Decl *ast.FuncDecl
	// Calls are the resolved call sites in body order (function-literal
	// bodies inlined in source order).
	Calls []Call
}

// A Call is one statically resolved call site.
type Call struct {
	// Callee is the target's full name, as FullName produces it.
	Callee string
	// Fn is the target object when the call stays resolvable in this
	// package's type information (always non-nil; "statically
	// resolved" is the condition for the edge existing at all).
	Fn *types.Func
	// Site is the call expression.
	Site *ast.CallExpr
	// InGo is true when the call executes on a new goroutine spawned
	// within the caller (directly via `go`, or inside a function
	// literal that a `go` statement launches).
	InGo bool
}

// A CallGraph maps full function names to their nodes.
type CallGraph struct {
	Nodes map[string]*Node
}

// FullName names a function for cross-package matching:
// "pkgpath.Func" for package functions, "pkgpath.(Recv).Method" for
// methods (pointer stars dropped, so value and pointer receivers of
// one type collide deliberately — lock and alloc summaries do not
// care which receiver form the callee declared).
func FullName(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + ".(" + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

// BuildCallGraph walks the package's declarations and resolves every
// static call. info needs Uses and Defs populated.
func BuildCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	g := &CallGraph{Nodes: map[string]*Node{}}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			node := &Node{Func: fn, Decl: fd}
			collectCalls(fd.Body, info, false, &node.Calls)
			g.Nodes[FullName(fn)] = node
		}
	}
	return g
}

// collectCalls gathers resolved call sites under n, descending into
// function literals (their goroutine-ness compounds: a literal run by
// `go` marks everything inside it InGo).
func collectCalls(n ast.Node, info *types.Info, inGo bool, out *[]Call) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			// The spawned call and anything in a spawned literal is on
			// another goroutine.
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				collectCalls(lit.Body, info, true, out)
				for _, arg := range x.Call.Args {
					collectCalls(arg, info, inGo, out)
				}
				return false
			}
			if fn := funcOf(info, x.Call); fn != nil {
				*out = append(*out, Call{Callee: FullName(fn), Fn: fn, Site: x.Call, InGo: true})
			}
			for _, arg := range x.Call.Args {
				collectCalls(arg, info, inGo, out)
			}
			return false
		case *ast.FuncLit:
			collectCalls(x.Body, info, inGo, out)
			return false
		case *ast.CallExpr:
			if fn := funcOf(info, x); fn != nil {
				*out = append(*out, Call{Callee: FullName(fn), Fn: fn, Site: x, InGo: inGo})
			}
			return true
		}
		return true
	})
}

// funcOf resolves the called function or method, seeing through
// parentheses; nil for func values, conversions, and builtins.
// (Duplicated from package analysis to keep flow importable on its
// own; the logic is four lines.)
func funcOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// Reachable returns the set of full names reachable from the given
// roots through this package's nodes, including the roots and every
// external leaf name encountered. extern, when non-nil, extends the
// walk across package boundaries: it maps an external full name to
// that function's own callees (from imported facts).
func (g *CallGraph) Reachable(roots []string, extern func(string) []string) map[string]bool {
	seen := map[string]bool{}
	stack := append([]string(nil), roots...)
	for len(stack) > 0 {
		name := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[name] {
			continue
		}
		seen[name] = true
		if node := g.Nodes[name]; node != nil {
			for _, c := range node.Calls {
				stack = append(stack, c.Callee)
			}
			continue
		}
		if extern != nil {
			stack = append(stack, extern(name)...)
		}
	}
	return seen
}

// SortedNames returns the graph's node names in lexical order, for
// deterministic iteration.
func (g *CallGraph) SortedNames() []string {
	names := make([]string, 0, len(g.Nodes))
	for name := range g.Nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
