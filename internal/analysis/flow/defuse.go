package flow

// Def-use chains: reaching definitions computed on the dataflow
// engine, folded into a per-use map. This is the "SSA-lite" part of
// the IR — instead of renaming into SSA form, each identifier use is
// linked to the set of definitions that may reach it, which is what
// the analyzers actually consult.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Def is one definition (assignment, declaration, or parameter
// binding) of a variable.
type Def struct {
	Var *types.Var
	// Stmt is the defining statement; nil for parameter/receiver
	// definitions that reach from the function signature.
	Stmt ast.Stmt
	// Rhs is the defining expression when one is syntactically
	// identifiable (x := e, x = e, var x = e); nil for parameters,
	// multi-value unpacking, var-without-init, range bindings, ++/--.
	Rhs ast.Expr
	// Pos locates the definition.
	Pos token.Pos
}

// Chains maps every variable use in the graph to the definitions that
// may reach it, in definition-position order.
type Chains map[*ast.Ident][]*Def

// defSet is the reaching-definitions lattice element: a set of defs,
// represented as a map for O(1) kill. Join is set union.
type defSet map[*Def]bool

type defLattice struct{}

func (defLattice) Bottom() defSet { return nil }

func (defLattice) Join(a, b defSet) defSet {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(defSet, len(a)+len(b))
	for d := range a {
		out[d] = true
	}
	for d := range b {
		out[d] = true
	}
	return out
}

func (defLattice) Equal(a, b defSet) bool {
	if len(a) != len(b) {
		return false
	}
	for d := range a {
		if !b[d] {
			return false
		}
	}
	return true
}

// BuildChains computes def-use chains for one function: g is the CFG
// of its body, sig its signature (parameter and receiver defs; nil
// ok), and info the package's type information (Defs/Uses must be
// populated). Only variables declared inside the function (or in its
// signature) are tracked; package-level and captured variables have
// no chains.
func BuildChains(g *Graph, sig *types.Signature, info *types.Info) Chains {
	b := &chainBuilder{info: info, defsOf: map[*types.Var][]*Def{}}

	entry := make(defSet)
	if sig != nil {
		addParam := func(v *types.Var) {
			if v == nil || v.Name() == "" || v.Name() == "_" {
				return
			}
			d := &Def{Var: v, Pos: v.Pos()}
			b.defsOf[v] = append(b.defsOf[v], d)
			entry[d] = true
		}
		if recv := sig.Recv(); recv != nil {
			addParam(recv)
		}
		for i := 0; i < sig.Params().Len(); i++ {
			addParam(sig.Params().At(i))
		}
		for i := 0; i < sig.Results().Len(); i++ {
			addParam(sig.Results().At(i))
		}
	}

	// Pre-scan every block so all defs exist (and get stable identity)
	// before the fixpoint runs; perStmt caches each statement's defs.
	perStmt := map[ast.Stmt][]*Def{}
	for _, blk := range g.Blocks {
		for _, s := range blk.Stmts {
			perStmt[s] = b.defsIn(s)
		}
	}

	res := Analysis[defSet]{
		Lattice: defLattice{},
		Entry:   entry,
		Transfer: func(blk *Block, in defSet) defSet {
			cur := in
			for _, s := range blk.Stmts {
				cur = b.apply(cur, perStmt[s])
			}
			return cur
		},
	}.Forward(g)

	// Second pass: resolve each use against the state reaching it,
	// re-walking each block from its in-state.
	chains := make(Chains)
	for _, blk := range g.Blocks {
		cur := res.In[blk.Index]
		for _, s := range blk.Stmts {
			b.uses(s, cur, chains)
			cur = b.apply(cur, perStmt[s])
		}
		if blk.Cond != nil {
			b.usesExpr(blk.Cond, cur, chains)
		}
	}
	for _, defs := range chains {
		sort.Slice(defs, func(i, j int) bool { return defs[i].Pos < defs[j].Pos })
	}
	return chains
}

type chainBuilder struct {
	info   *types.Info
	defsOf map[*types.Var][]*Def
}

// apply kills and gens the statement's definitions over the state.
func (b *chainBuilder) apply(in defSet, defs []*Def) defSet {
	if len(defs) == 0 {
		return in
	}
	out := make(defSet, len(in)+len(defs))
	for d := range in {
		out[d] = true
	}
	for _, d := range defs {
		for old := range out {
			if old.Var == d.Var {
				delete(out, old)
			}
		}
		out[d] = true
	}
	return out
}

// defsIn extracts the variable definitions a single statement makes.
// Nested statements are not descended into: the CFG already split
// compound statements into blocks, so each Stmts entry is simple
// (assignments, decls, incdec, range headers).
func (b *chainBuilder) defsIn(s ast.Stmt) []*Def {
	var out []*Def
	add := func(id *ast.Ident, rhs ast.Expr) {
		v := b.varOf(id)
		if v == nil {
			return
		}
		d := &Def{Var: v, Stmt: s, Rhs: rhs, Pos: id.Pos()}
		b.defsOf[v] = append(b.defsOf[v], d)
		out = append(out, d)
	}
	switch s := s.(type) {
	case *ast.AssignStmt:
		// 1:1 assignments carry their Rhs; n:1 (multi-value) do not.
		for i, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			var rhs ast.Expr
			if len(s.Lhs) == len(s.Rhs) {
				rhs = s.Rhs[i]
			}
			add(id, rhs)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					var rhs ast.Expr
					if len(vs.Values) == len(vs.Names) {
						rhs = vs.Values[i]
					}
					add(id, rhs)
				}
			}
		}
	case *ast.IncDecStmt:
		if id, ok := s.X.(*ast.Ident); ok {
			add(id, nil)
		}
	case *ast.RangeStmt:
		if id, ok := s.Key.(*ast.Ident); ok {
			add(id, nil)
		}
		if id, ok := s.Value.(*ast.Ident); ok {
			add(id, nil)
		}
	}
	return out
}

// varOf resolves an identifier to the local variable it defines or
// assigns, nil for blanks, non-variables, and package-level objects.
func (b *chainBuilder) varOf(id *ast.Ident) *types.Var {
	if id.Name == "_" {
		return nil
	}
	obj := b.info.Defs[id]
	if obj == nil {
		obj = b.info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() == v.Pkg().Scope() {
		return nil // package-level
	}
	return v
}

// uses records every identifier use in s against the current state.
func (b *chainBuilder) uses(s ast.Stmt, cur defSet, chains Chains) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate CFG, separate chains
		case *ast.Ident:
			b.useIdent(n, cur, chains)
		}
		return true
	})
}

func (b *chainBuilder) usesExpr(e ast.Expr, cur defSet, chains Chains) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			b.useIdent(id, cur, chains)
		}
		_, isLit := n.(*ast.FuncLit)
		return !isLit
	})
}

func (b *chainBuilder) useIdent(id *ast.Ident, cur defSet, chains Chains) {
	obj, ok := b.info.Uses[id].(*types.Var)
	if !ok || b.defsOf[obj] == nil {
		return
	}
	if _, seen := chains[id]; seen {
		return
	}
	var reach []*Def
	for d := range cur {
		if d.Var == obj {
			reach = append(reach, d)
		}
	}
	if reach != nil {
		chains[id] = reach
	}
}
