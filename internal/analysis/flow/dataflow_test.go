package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// intLattice is the chain lattice over ints ordered by ≤ with an
// explicit top: bottom ⊏ 0 ⊏ 1 ⊏ 2 ⊏ ... ⊏ top, Join = max. The
// ascending chain is infinite, so a transfer function that increments
// around a loop back edge never converges without widening — exactly
// what the termination test needs.
//
// Elements: nil = bottom, {v, false} = the value v, {_, true} = top.
type intVal struct {
	v   int
	top bool
}

type intLattice struct{}

func (intLattice) Bottom() *intVal { return nil }

func (intLattice) Join(a, b *intVal) *intVal {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.top || b.top:
		return &intVal{top: true}
	case a.v >= b.v:
		return a
	default:
		return b
	}
}

func (intLattice) Equal(a, b *intVal) bool {
	switch {
	case a == nil || b == nil:
		return a == b
	default:
		return a.top == b.top && (a.top || a.v == b.v)
	}
}

// loopGraph builds the canonical counting loop:
//
//	entry -> head; head -> body, done; body -> head
//
// whose body transfer increments the counter — a non-converging chain
// without widening.
func loopGraph(t *testing.T) *Graph {
	t.Helper()
	return New(parseBody(t, `for cond() {
	inc()
}`))
}

// TestFixpointWidening is the ISSUE's termination test: a loop over a
// lattice with an infinite ascending chain must (a) blow MaxIter
// without widening, flagged by Converged=false, and (b) terminate at
// top with a widening operator.
func TestFixpointWidening(t *testing.T) {
	g := loopGraph(t)

	transfer := func(b *Block, in *intVal) *intVal {
		if b.Kind == "for.body" && in != nil && !in.top {
			return &intVal{v: in.v + 1} // the ascending chain
		}
		return in
	}

	t.Run("without-widening-hits-MaxIter", func(t *testing.T) {
		res := Analysis[*intVal]{
			Lattice:  intLattice{},
			Transfer: transfer,
			Entry:    &intVal{v: 0},
			MaxIter:  100,
		}.Forward(g)
		if res.Converged {
			t.Fatalf("expected non-convergence without widening; head in-state %+v after %d iterations",
				res.In[2], res.Iterations)
		}
		if res.Iterations < 100 {
			t.Fatalf("stopped after %d iterations, want MaxIter=100 visits", res.Iterations)
		}
	})

	t.Run("widening-terminates-at-top", func(t *testing.T) {
		res := Analysis[*intVal]{
			Lattice:  intLattice{},
			Transfer: transfer,
			Entry:    &intVal{v: 0},
			MaxIter:  100,
			// Standard widening: any strictly increasing revisit jumps
			// straight to top.
			Widen: func(prev, next *intVal) *intVal {
				if prev == nil || (intLattice{}).Equal(prev, next) {
					return next
				}
				return &intVal{top: true}
			},
		}.Forward(g)
		if !res.Converged {
			t.Fatalf("widened analysis did not converge in %d iterations", res.Iterations)
		}
		// The loop head's in-state must have been widened to top: the
		// counter is 0 on entry and k+1 around the back edge.
		head := res.In[2]
		if head == nil || !head.top {
			t.Fatalf("loop head in-state = %+v, want top", head)
		}
		// The loop-done block sees the widened state too.
		done := res.In[4]
		if done == nil || !done.top {
			t.Fatalf("for.done in-state = %+v, want top", done)
		}
	})
}

// TestFixpointBranchJoin checks the basic join: the merge point takes
// the least upper bound of the branch out-states.
func TestFixpointBranchJoin(t *testing.T) {
	g := New(parseBody(t, `if c() {
	a()
} else {
	b()
}
after()`))

	res := Analysis[*intVal]{
		Lattice: intLattice{},
		Transfer: func(b *Block, in *intVal) *intVal {
			switch b.Kind {
			case "if.then":
				return &intVal{v: 7}
			case "if.else":
				return &intVal{v: 8}
			}
			return in
		},
		Entry: &intVal{v: 0},
	}.Forward(g)
	if !res.Converged {
		t.Fatal("trivial CFG did not converge")
	}
	// if.done joins {7} and {8} → max, {8}.
	join := res.In[3]
	if join == nil || join.top || join.v != 8 {
		t.Fatalf("join of branch states = %+v, want {8}", join)
	}
}

// TestEdgeRefinement checks the Edge hook: the true edge of the branch
// refines the state, the false edge keeps it.
func TestEdgeRefinement(t *testing.T) {
	g := New(parseBody(t, `if c() {
	a()
}
after()`))

	res := Analysis[*intVal]{
		Lattice:  intLattice{},
		Transfer: func(b *Block, in *intVal) *intVal { return in },
		Edge: func(from, to *Block, out *intVal) *intVal {
			if from.Cond != nil && len(from.Succs) == 2 && from.Succs[0] == to {
				return &intVal{v: 1} // "condition known true" refinement
			}
			return out
		},
		Entry: &intVal{v: 0},
	}.Forward(g)
	then := res.In[2]
	if then == nil || then.top || then.v != 1 {
		t.Fatalf("true-edge state = %+v, want {1}", then)
	}
	// if.done joins the refined then-state {1} with the false-edge
	// entry state {0} → {1}.
	done := res.In[3]
	if done == nil || done.top || done.v != 1 {
		t.Fatalf("post-if state = %+v, want {1}", done)
	}
}

// typecheck parses and type-checks one file, returning what
// BuildChains and BuildCallGraph need.
func typecheck(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
		Types: map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, f, pkg, info
}

func TestDefUseChains(t *testing.T) {
	_, f, _, info := typecheck(t, `package p

func f(a int) int {
	x := 1
	if a > 0 {
		x = 2
	}
	return x
}
`)
	fd := f.Decls[0].(*ast.FuncDecl)
	sig := info.Defs[fd.Name].Type().(*types.Signature)
	g := New(fd.Body)
	chains := BuildChains(g, sig, info)

	// Find the `return x` use.
	var retUse *ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			retUse = ret.Results[0].(*ast.Ident)
		}
		return true
	})
	defs := chains[retUse]
	if len(defs) != 2 {
		t.Fatalf("return x: %d reaching defs, want 2 (x := 1 and x = 2); chains=%v", len(defs), defs)
	}
	// Inside the if, `x = 2` kills `x := 1`; after the join both reach.
	for _, d := range defs {
		if d.Var.Name() != "x" {
			t.Errorf("reaching def of wrong var %s", d.Var.Name())
		}
	}

	// The `a > 0` condition's use of a reaches the parameter def.
	var aUse *ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "a" {
			aUse = id
		}
		return true
	})
	adefs := chains[aUse]
	if len(adefs) != 1 || adefs[0].Stmt != nil {
		t.Fatalf("use of a: defs=%v, want exactly the parameter def", adefs)
	}
}

func TestDefUseKill(t *testing.T) {
	_, f, _, info := typecheck(t, `package p

func f() int {
	x := 1
	x = 2
	return x
}
`)
	fd := f.Decls[0].(*ast.FuncDecl)
	g := New(fd.Body)
	chains := BuildChains(g, info.Defs[fd.Name].Type().(*types.Signature), info)
	var retUse *ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			retUse = ret.Results[0].(*ast.Ident)
		}
		return true
	})
	defs := chains[retUse]
	if len(defs) != 1 {
		t.Fatalf("straight-line redefinition: %d reaching defs, want 1", len(defs))
	}
	if defs[0].Rhs == nil {
		t.Fatal("surviving def lost its Rhs")
	}
}

func TestCallGraph(t *testing.T) {
	_, f, _, info := typecheck(t, `package p

type T struct{}

func (t *T) m() { helper() }

func helper() {}

func root() {
	var t T
	t.m()
	go spawned()
	go func() { inLit() }()
}

func spawned() {}
func inLit()   {}
`)
	g := BuildCallGraph([]*ast.File{f}, info)

	root := g.Nodes["p.root"]
	if root == nil {
		t.Fatalf("no node for p.root; have %v", g.SortedNames())
	}
	byName := map[string]Call{}
	for _, c := range root.Calls {
		byName[c.Callee] = c
	}
	if _, ok := byName["p.(T).m"]; !ok {
		t.Errorf("root → (T).m edge missing; calls=%v", root.Calls)
	}
	if c, ok := byName["p.spawned"]; !ok || !c.InGo {
		t.Errorf("go spawned(): edge missing or not InGo (%+v)", c)
	}
	if c, ok := byName["p.inLit"]; !ok || !c.InGo {
		t.Errorf("call inside go func(){}: edge missing or not InGo (%+v)", c)
	}

	// Reachability: root reaches helper through (T).m.
	reach := g.Reachable([]string{"p.root"}, nil)
	if !reach["p.helper"] {
		t.Errorf("p.helper not reachable from p.root: %v", reach)
	}

	// extern hook: an unknown leaf expands through the callback.
	reach = g.Reachable([]string{"q.external"}, func(name string) []string {
		if name == "q.external" {
			return []string{"q.deeper"}
		}
		return nil
	})
	if !reach["q.deeper"] {
		t.Errorf("extern expansion missed q.deeper: %v", reach)
	}
}
