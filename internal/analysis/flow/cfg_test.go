package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as the body of func f() { ... } and returns its
// block statement.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// golden CFG tests: every statement shape the builder distinguishes,
// rendered through Graph.String and compared verbatim. The format is
// "<index> <kind> [stmts] if <cond> -> succs".
func TestCFGGolden(t *testing.T) {
	tests := []struct {
		name, src, want string
	}{
		{
			name: "straightline",
			src:  "x := 1; y := x",
			want: `
0 entry [x := 1; y := x] -> 1
1 exit
`,
		},
		{
			name: "if",
			src: `x := 1
if x > 0 {
	x = 2
}
x = 3`,
			want: `
0 entry [x := 1] if x > 0 -> 2 3
1 exit
2 if.then [x = 2] -> 3
3 if.done [x = 3] -> 1
`,
		},
		{
			name: "if-else",
			src: `if c() {
	a()
} else {
	b()
}`,
			want: `
0 entry if c() -> 2 4
1 exit
2 if.then [a()] -> 3
3 if.done -> 1
4 if.else [b()] -> 3
`,
		},
		{
			name: "for",
			src: `for i := 0; i < 10; i++ {
	use(i)
}
done()`,
			want: `
0 entry [i := 0] -> 2
1 exit
2 for.head if i < 10 -> 3 4
3 for.body [use(i)] -> 5
4 for.done [done()] -> 1
5 for.post [i++] -> 2
`,
		},
		{
			// continue must bypass the switch's nil continue placeholder
			// and target the loop head (regression: this used to wire a
			// nil successor and crash Preds).
			name: "continue-inside-switch",
			src: `for {
	switch pick() {
	case 1:
		continue
	case 2:
		work()
	}
	work()
}`,
			want: `
0 entry -> 2
1 exit
2 for.head -> 3
3 for.body [pick()] -> 6 7 5
4 for.done -> 1
5 switch.done [work()] -> 2
6 switch.case [continue] -> 2
7 switch.case [work()] -> 5
`,
		},
		{
			name: "for-break-continue",
			src: `for {
	if stop() {
		break
	}
	if skip() {
		continue
	}
	work()
}`,
			want: `
0 entry -> 2
1 exit
2 for.head -> 3
3 for.body if stop() -> 5 6
4 for.done -> 1
5 if.then [break] -> 4
6 if.done if skip() -> 7 8
7 if.then [continue] -> 2
8 if.done [work()] -> 2
`,
		},
		{
			name: "range",
			src: `for _, v := range xs {
	use(v)
}`,
			want: `
0 entry -> 2
1 exit
2 range.head [for _, v := range xs { use(v) }] -> 3 4
3 range.body [use(v)] -> 2
4 range.done -> 1
`,
		},
		{
			name: "switch",
			src: `switch x() {
case 1:
	a()
case 2:
	b()
	fallthrough
case 3:
	c()
default:
	d()
}`,
			want: `
0 entry [x()] -> 3 4 5 6
1 exit
2 switch.done -> 1
3 switch.case [a()] -> 2
4 switch.case [b(); fallthrough] -> 5
5 switch.case [c()] -> 2
6 switch.case [d()] -> 2
`,
		},
		{
			name: "switch-no-default",
			src: `switch x() {
case 1:
	a()
}`,
			want: `
0 entry [x()] -> 3 2
1 exit
2 switch.done -> 1
3 switch.case [a()] -> 2
`,
		},
		{
			name: "select",
			src: `select {
case v := <-ch:
	use(v)
case out <- 1:
	sent()
default:
	idle()
}`,
			want: `
0 entry -> 3 4 5
1 exit
2 select.done -> 1
3 select.case [v := <-ch; use(v)] -> 2
4 select.case [out <- 1; sent()] -> 2
5 select.case [idle()] -> 2
`,
		},
		{
			name: "defer-and-return",
			src: `defer cleanup()
if bad() {
	return
}
work()`,
			want: `
0 entry [defer cleanup()] if bad() -> 2 3
1 exit
2 if.then [return] -> 1
3 if.done [work()] -> 1
`,
		},
		{
			name: "panic",
			src: `if bad() {
	panic("no")
}
work()`,
			want: `
0 entry if bad() -> 2 3
1 exit
2 if.then [panic("no")] -> 1
3 if.done [work()] -> 1
`,
		},
		{
			name: "labeled-break",
			src: `outer:
for {
	for {
		if done() {
			break outer
		}
	}
}
end()`,
			want: `
0 entry -> 2
1 exit
2 label.outer -> 3
3 for.head -> 4
4 for.body -> 6
5 for.done [end()] -> 1
6 for.head -> 7
7 for.body if done() -> 9 10
8 for.done -> 3
9 if.then [break outer] -> 5
10 if.done -> 6
`,
		},
		{
			name: "goto",
			src: `if bad() {
	goto fail
}
work()
return
fail:
cleanup()`,
			want: `
0 entry if bad() -> 2 3
1 exit
2 if.then [goto fail] -> 4
3 if.done [work(); return] -> 1
4 label.fail [cleanup()] -> 1
`,
		},
		{
			name: "dead-code-after-return",
			src: `return
unreached()`,
			want: `
0 entry [return] -> 1
1 exit
2 unreachable [unreached()] -> 1
`,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := New(parseBody(t, tt.src))
			got := strings.TrimSpace(g.String())
			want := strings.TrimSpace(tt.want)
			if got != want {
				t.Errorf("CFG mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

func TestCFGNilBody(t *testing.T) {
	g := New(nil)
	if len(g.Blocks) != 2 {
		t.Fatalf("nil body: got %d blocks, want 2", len(g.Blocks))
	}
	if len(g.Entry().Succs) != 1 || g.Entry().Succs[0] != g.Exit() {
		t.Fatalf("nil body: entry not wired to exit: %s", g.String())
	}
}

func TestCFGPreds(t *testing.T) {
	g := New(parseBody(t, `if c() {
	a()
}`))
	preds := g.Preds()
	// if.done (index 3) has two predecessors: the header's false edge
	// and the then-block.
	if len(preds[3]) != 2 {
		t.Fatalf("if.done preds = %d, want 2\n%s", len(preds[3]), g.String())
	}
	if len(preds[0]) != 0 {
		t.Fatalf("entry has %d preds, want 0", len(preds[0]))
	}
}
