// Package hotalloc machine-checks the 0-alloc discipline of the
// serving fast paths — the ~44 ns GET /v1/recommendation/{fp} hit
// path is the repository's headline number, and one stray closure or
// fmt call quietly turns it into a GC-visible path. A function marked
//
//	//aarc:hotpath
//
// is a root: neither it nor anything it transitively calls (through
// the static call graph, across packages via unitchecker facts) may
// contain heap-escaping constructs:
//
//   - function literals (closure allocation);
//   - map/slice composite literals and &T{} (heap-escaping composites;
//     a plain struct value T{} stays on the stack and is fine);
//   - make and new;
//   - append (amortized growth is still allocation);
//   - string ⇄ []byte/[]rune conversions;
//   - passing a non-pointer concrete value to an interface parameter
//     (boxing);
//   - any call into fmt, encoding/json, or sort (all allocate by
//     design). Other stdlib callees are trusted clean — the contract
//     is about the project's own code.
//
// Dynamic calls (interface methods, func values) cannot be expanded
// statically and are skipped; the contract is that every concrete
// implementation backing a hot path carries its own //aarc:hotpath
// (store.Memory.Get, store.Tiered.Get, store.Notify.Get do), and the
// AllocsPerRun twin tests in internal/service and internal/store pin
// the same paths at run time. The waiver for a deliberate allocation
// is //aarc:coldalloc <reason> on the offending line.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"aarc/internal/analysis"
	"aarc/internal/analysis/flow"
)

var Analyzer = &analysis.Analyzer{
	Name:  "hotalloc",
	Doc:   "enforce zero heap allocations in //aarc:hotpath functions and everything they transitively call",
	Run:   run,
	Facts: true,
}

// denied are the stdlib packages that always allocate; calling into
// them on a hot path is itself the violation.
var denied = map[string]bool{
	"fmt":           true,
	"encoding/json": true,
	"sort":          true,
}

// Alloc is one heap-escaping construct, positioned printably so the
// record survives the trip through a fact file.
type Alloc struct {
	What string `json:"what"`
	At   string `json:"at"`
}

// Summary is one function's allocation summary.
type Summary struct {
	Allocs []Alloc  `json:"allocs,omitempty"`
	Calls  []string `json:"calls,omitempty"`
}

// Fact is a package's exported view: summaries for its own functions
// merged with everything its dependencies exported, so importers
// resolve transitive callees against direct imports' facts alone.
type Fact struct {
	Funcs map[string]Summary `json:"funcs,omitempty"`
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Name(), "_test") {
		return nil
	}

	// Merge imported summaries.
	known := map[string]Summary{}
	for path := range pass.Facts {
		var f Fact
		if !pass.ImportFact(path, &f) {
			continue
		}
		for name, s := range f.Funcs {
			known[name] = s
		}
	}

	graph := flow.BuildCallGraph(nonTestFiles(pass), pass.TypesInfo)

	// Local summaries: direct allocs (positions kept for reporting)
	// plus expandable callees.
	type localAlloc struct {
		what string
		pos  token.Pos
	}
	localAllocs := map[string][]localAlloc{}
	localCalls := map[string][]flow.Call{}
	for _, name := range graph.SortedNames() {
		node := graph.Nodes[name]
		var allocs []localAlloc
		collectAllocs(pass, node.Decl.Body, func(what string, pos token.Pos) {
			allocs = append(allocs, localAlloc{what, pos})
		})
		for _, c := range node.Calls {
			if denied[pkgPathOf(c.Fn)] {
				allocs = append(allocs, localAlloc{"call into " + pkgPathOf(c.Fn), c.Site.Pos()})
			}
		}
		localAllocs[name] = allocs
		localCalls[name] = node.Calls
	}

	// Roots: //aarc:hotpath on the declaration line (or above it).
	var roots []string
	for _, name := range graph.SortedNames() {
		node := graph.Nodes[name]
		if _, ok := pass.Markers().At(pass.Fset, node.Decl.Pos(), "hotpath"); ok {
			roots = append(roots, name)
		}
	}

	// Walk each root's transitive closure. Local allocs report at
	// their own position; allocs inside another package report at the
	// local call site whose edge reaches them.
	for _, root := range roots {
		seen := map[string]bool{}
		var visit func(name string)
		visit = func(name string) {
			if seen[name] {
				return
			}
			seen[name] = true
			if _, local := graph.Nodes[name]; local {
				for _, a := range localAllocs[name] {
					report(pass, a.pos, root, "%s", a.what)
				}
				for _, c := range localCalls[name] {
					if _, isLocal := graph.Nodes[c.Callee]; isLocal {
						visit(c.Callee)
						continue
					}
					if ext, ok := known[c.Callee]; ok {
						for _, a := range externAllocs(c.Callee, ext, known, map[string]bool{}) {
							report(pass, c.Site.Pos(), root, "call to %s which allocates (%s at %s)", shortName(c.Callee), a.What, a.At)
						}
					}
					// Unknown callee (stdlib outside the denylist,
					// interface method): trusted clean by contract.
				}
			}
		}
		visit(root)
	}

	// Export: local summaries (printable form) merged over the
	// imported ones.
	out := Fact{Funcs: map[string]Summary{}}
	for name, s := range known {
		out.Funcs[name] = s
	}
	for _, name := range graph.SortedNames() {
		var s Summary
		for _, a := range localAllocs[name] {
			// Waived allocations stay out of the exported summary too:
			// the reason was reviewed where the allocation lives.
			if m, ok := pass.Markers().At(pass.Fset, a.pos, "coldalloc"); ok && m.Arg != "" {
				continue
			}
			s.Allocs = append(s.Allocs, Alloc{What: a.what, At: pass.Fset.Position(a.pos).String()})
		}
		calleeSet := map[string]bool{}
		for _, c := range localCalls[name] {
			if _, isLocal := graph.Nodes[c.Callee]; isLocal {
				calleeSet[c.Callee] = true
			} else if _, ok := known[c.Callee]; ok {
				calleeSet[c.Callee] = true
			}
		}
		for callee := range calleeSet {
			s.Calls = append(s.Calls, callee)
		}
		sort.Strings(s.Calls)
		out.Funcs[name] = s
	}
	if pass.ExportFact != nil {
		pass.ExportFact(out)
	}
	return nil
}

// externAllocs gathers the allocations reachable from an external
// function through the fact map.
func externAllocs(name string, s Summary, known map[string]Summary, seen map[string]bool) []Alloc {
	if seen[name] {
		return nil
	}
	seen[name] = true
	out := append([]Alloc(nil), s.Allocs...)
	for _, callee := range s.Calls {
		if ext, ok := known[callee]; ok {
			out = append(out, externAllocs(callee, ext, known, seen)...)
		}
	}
	return out
}

func report(pass *analysis.Pass, pos token.Pos, root string, format string, args ...any) {
	if m, ok := pass.Markers().At(pass.Fset, pos, "coldalloc"); ok {
		if m.Arg == "" {
			pass.Reportf(pos, "//aarc:coldalloc marker needs a reason")
		}
		return
	}
	msg := fmt.Sprintf(format, args...)
	pass.Reportf(pos, "%s on //aarc:hotpath path rooted at %s; hoist the allocation off the fast path or mark //aarc:coldalloc <reason>", msg, shortName(root))
}

// collectAllocs walks a body and reports every heap-escaping
// construct. Function-literal interiors are walked too — the literal
// itself is already a violation, but naming what is inside helps.
func collectAllocs(pass *analysis.Pass, body *ast.BlockStmt, emit func(what string, pos token.Pos)) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			emit("closure", n.Pos())
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Map:
				emit("map literal", n.Pos())
			case *types.Slice:
				emit("slice literal", n.Pos())
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
					emit("heap-escaping &composite literal", n.Pos())
				}
			}
		case *ast.CallExpr:
			collectCallAllocs(pass, n, emit)
		}
		return true
	})
}

// collectCallAllocs classifies one call expression: allocating
// builtins, allocating conversions, and interface boxing at the
// argument list.
func collectCallAllocs(pass *analysis.Pass, call *ast.CallExpr, emit func(string, token.Pos)) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				emit("make", call.Pos())
			case "new":
				emit("new", call.Pos())
			case "append":
				emit("append", call.Pos())
			}
			return
		}
	}

	// Conversions: T(x) where Fun denotes a type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type.Underlying(), pass.TypesInfo.TypeOf(call.Args[0])
		if src != nil && allocatingConversion(dst, src.Underlying()) {
			emit("string conversion", call.Pos())
		}
		return
	}

	// Interface boxing: a non-pointer concrete argument passed to an
	// interface parameter.
	fn := analysis.FuncOf(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sig := fn.Signature()
	for i, arg := range call.Args {
		var param *types.Var
		if i < sig.Params().Len() {
			param = sig.Params().At(i)
		} else if sig.Variadic() && sig.Params().Len() > 0 {
			param = sig.Params().At(sig.Params().Len() - 1)
		}
		if param == nil {
			continue
		}
		pt := param.Type()
		if s, ok := pt.(*types.Slice); ok && sig.Variadic() && i >= sig.Params().Len()-1 {
			pt = s.Elem()
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Interface, *types.Pointer:
			continue // already boxed, or a pointer (no copy to heap)
		}
		if bt, ok := pass.TypesInfo.Types[arg]; ok && bt.Value != nil {
			continue // untyped constants box into small shared cells
		}
		emit("interface boxing", arg.Pos())
	}
}

// allocatingConversion reports string⇄[]byte and string⇄[]rune.
func allocatingConversion(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

func shortName(full string) string {
	if i := strings.LastIndex(full, "/"); i >= 0 {
		return full[i+1:]
	}
	return full
}

func nonTestFiles(pass *analysis.Pass) []*ast.File {
	var out []*ast.File
	for _, f := range pass.Files {
		if !analysis.IsTestFile(pass.Fset, f) {
			out = append(out, f)
		}
	}
	return out
}
