package hotalloc_test

import (
	"testing"

	"aarc/internal/analysis/analysistest"
	"aarc/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "../testdata", hotalloc.Analyzer, "hotalloc/dep", "hotalloc/svc")
}
