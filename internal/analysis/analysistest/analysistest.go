// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want comments, following the
// x/tools/go/analysis/analysistest conventions:
//
//	testdata/src/<pkg>/*.go
//
// where a line expecting diagnostics carries a comment like
//
//	m[k] = v // want `map iteration order`
//
// with one Go-quoted regexp per expected diagnostic. Every diagnostic
// must be matched by a want on its line and every want must be
// consumed, so fixtures double as both positive and negative cases.
//
// Fixture packages are type-checked against the standard library via
// go/importer's source mode (offline; GOROOT source only) and against
// sibling fixture packages under the same testdata/src root, so a
// fixture can fake project packages (a `store` with wrapper
// constructors, a `search` with Register) without importing the real
// ones.
package analysistest

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"aarc/internal/analysis"
)

// Shared across all Runs in a test binary: source-importing the
// standard library is the slow part, and one importer amortizes it.
var (
	loadMu sync.Mutex
	fset   = token.NewFileSet()
	stdImp types.ImporterFrom
	pkgs   = map[string]*loadedPkg{}

	// factsCache memoizes per-fixture fact computation for Facts
	// analyzers, keyed by analyzer name + fixture package name.
	factsCache = map[string]map[string]json.RawMessage{}
)

type loadedPkg struct {
	pkg      *types.Package
	info     *types.Info
	files    []*ast.File
	dir      string
	testdata string // the testdata root the fixture was loaded from
	err      error
}

// Run applies the analyzer to each fixture package under
// dir/src/<name> and reports mismatches against // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, names ...string) {
	t.Helper()
	for _, name := range names {
		lp := load(t, dir, name)
		if lp.err != nil {
			t.Errorf("%s: loading fixture %q: %v", a.Name, name, lp.err)
			continue
		}
		runOne(t, a, lp, name)
	}
}

func load(t *testing.T, dir, name string) *loadedPkg {
	loadMu.Lock()
	defer loadMu.Unlock()
	return loadLocked(t, dir, name)
}

func loadLocked(t *testing.T, dir, name string) *loadedPkg {
	abs, err := filepath.Abs(filepath.Join(dir, "src", name))
	if err != nil {
		return &loadedPkg{err: err}
	}
	if lp, ok := pkgs[abs]; ok {
		return lp
	}
	lp := &loadedPkg{dir: abs, testdata: dir}
	pkgs[abs] = lp

	entries, err := os.ReadDir(abs)
	if err != nil {
		lp.err = err
		return lp
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(abs, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			lp.err = err
			return lp
		}
		lp.files = append(lp.files, f)
	}
	if len(lp.files) == 0 {
		lp.err = fmt.Errorf("no Go files in %s", abs)
		return lp
	}

	if stdImp == nil {
		stdImp = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	}
	imp := &fixtureImporter{t: t, dir: dir}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	cfg := &types.Config{Importer: imp}
	lp.info = info
	lp.pkg, lp.err = cfg.Check(name, fset, lp.files, info)
	return lp
}

// fixtureImporter resolves import paths against the testdata src root
// first (so fixtures can fake project packages by path, e.g.
// "tierorder/store"), then falls back to the standard library source
// importer.
type fixtureImporter struct {
	t   *testing.T
	dir string // the testdata directory passed to Run
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	return fi.ImportFrom(path, "", 0)
}

func (fi *fixtureImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(fi.dir, "src", path)); err == nil && st.IsDir() {
		lp := loadLocked(fi.t, fi.dir, path)
		return lp.pkg, lp.err
	}
	return stdImp.ImportFrom(path, srcDir, mode)
}

// fixtureFacts computes a Facts analyzer's summaries for one fixture
// package and everything it transitively imports under the same
// testdata root: the imported packages' facts are computed first
// (recursively, memoized), then the analyzer runs over the package
// with diagnostics discarded and its export joins the map — the same
// bottom-up order cmd/go's VetxOnly scheduling produces.
func fixtureFacts(t *testing.T, a *analysis.Analyzer, dir, name string) map[string]json.RawMessage {
	if st, err := os.Stat(filepath.Join(dir, "src", name)); err != nil || !st.IsDir() {
		return nil // stdlib or unknown import: no facts
	}
	key := a.Name + "\x00" + name
	if facts, ok := factsCache[key]; ok {
		return facts
	}
	facts := map[string]json.RawMessage{}
	factsCache[key] = facts // pre-register; import graphs are acyclic

	lp := load(t, dir, name)
	if lp.err != nil {
		return facts
	}
	for _, imp := range lp.pkg.Imports() {
		mergeFacts(facts, fixtureFacts(t, a, dir, imp.Path()))
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      lp.files,
		Pkg:        lp.pkg,
		TypesInfo:  lp.info,
		Dir:        lp.dir,
		ModuleRoot: lp.dir,
		Report:     func(analysis.Diagnostic) {},
		Facts:      facts,
	}
	pass.ExportFact = func(v any) {
		if raw, err := json.Marshal(v); err == nil {
			facts[name] = raw
		}
	}
	_ = a.Run(pass)
	return facts
}

func mergeFacts(dst, src map[string]json.RawMessage) {
	for k, v := range src {
		dst[k] = v
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

func runOne(t *testing.T, a *analysis.Analyzer, lp *loadedPkg, name string) {
	t.Helper()
	wants := collectWants(t, lp)

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      lp.files,
		Pkg:        lp.pkg,
		TypesInfo:  lp.info,
		Dir:        lp.dir,
		ModuleRoot: lp.dir,
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if a.Facts {
		// Emulate the unitchecker's cross-package fact flow: run the
		// analyzer over imported fixture packages first (diagnostics
		// discarded) and hand their summaries to this pass.
		pass.Facts = map[string]json.RawMessage{}
		for _, imp := range lp.pkg.Imports() {
			mergeFacts(pass.Facts, fixtureFacts(t, a, lp.testdata, imp.Path()))
		}
		pass.ExportFact = func(any) {}
	}
	if err := a.Run(pass); err != nil {
		t.Errorf("%s/%s: analyzer error: %v", a.Name, name, err)
		return
	}

	for _, d := range diags {
		p := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == p.Filename && w.line == p.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s/%s: unexpected diagnostic at %s: %s", a.Name, name, p, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s/%s: no diagnostic at %s:%d matching %q", a.Name, name, filepath.Base(w.file), w.line, w.text)
		}
	}
}

// collectWants parses `// want "re" "re"...` comments across the
// package, sorted for deterministic matching.
func collectWants(t *testing.T, lp *loadedPkg) []*want {
	t.Helper()
	var wants []*want
	for _, f := range lp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range splitQuoted(text[i+len("want "):]) {
					expr, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, lit, err)
						continue
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, expr, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, text: expr})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// splitQuoted extracts the Go string/backquote literals from a want
// comment tail.
func splitQuoted(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			j := i + 1
			for j < len(s) && (s[j] != '"' || s[j-1] == '\\') {
				j++
			}
			if j < len(s) {
				out = append(out, s[i:j+1])
				i = j
			}
		case '`':
			j := strings.IndexByte(s[i+1:], '`')
			if j >= 0 {
				out = append(out, s[i:i+j+2])
				i += j + 1
			}
		}
	}
	return out
}
