package mathx

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMatrix(0, 3) should panic")
		}
	}()
	NewMatrix(0, 3)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("FromRows content wrong: %+v", m)
	}
	if _, err := FromRows(nil); err == nil {
		t.Error("FromRows(nil) should error")
	}
	if _, err := FromRows([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestIdentityMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	i3 := Identity(2)
	prod, err := Mul(a, i3)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if prod.At(r, c) != a.At(r, c) {
				t.Errorf("A·I != A at (%d,%d)", r, c)
			}
		}
	}
	if _, err := Mul(a, NewMatrix(3, 2)); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b, _ := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	p, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if p.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v, want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	v, err := MulVec(a, []float64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 17 || v[1] != 39 {
		t.Errorf("MulVec = %v", v)
	}
	if _, err := MulVec(a, []float64{1}); err == nil {
		t.Error("MulVec dimension mismatch should error")
	}
}

func TestTransposeCloneAddDiag(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 {
		t.Errorf("Transpose wrong: %+v", at)
	}
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Error("Clone should not share storage")
	}
	sq, _ := FromRows([][]float64{{1, 0}, {0, 1}})
	sq.AddDiag(2)
	if sq.At(0, 0) != 3 || sq.At(1, 1) != 3 || sq.At(0, 1) != 0 {
		t.Errorf("AddDiag wrong: %+v", sq)
	}
}

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if Dot(nil, nil) != 0 {
		t.Error("Dot of empty should be 0")
	}
}

func TestCholeskyKnown(t *testing.T) {
	// A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]]
	a, _ := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(l.At(0, 0), 2, 1e-12) || !almost(l.At(1, 0), 1, 1e-12) ||
		!almost(l.At(1, 1), math.Sqrt(2), 1e-12) || l.At(0, 1) != 0 {
		t.Errorf("Cholesky factor wrong: %+v", l)
	}
}

func TestCholeskyErrors(t *testing.T) {
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Error("non-square should error")
	}
	neg, _ := FromRows([][]float64{{-1, 0}, {0, 1}})
	if _, err := Cholesky(neg); err != ErrNotPositiveDefinite {
		t.Errorf("negative-definite err = %v, want ErrNotPositiveDefinite", err)
	}
	// Singular (rank 1) matrix.
	sing, _ := FromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := Cholesky(sing); err == nil {
		t.Error("singular matrix should fail Cholesky")
	}
}

func TestCholSolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.IntN(12)
		// Build SPD matrix A = B·Bᵀ + n·I.
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a, err := Mul(b, b.Transpose())
		if err != nil {
			t.Fatal(err)
		}
		a.AddDiag(float64(n))
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		rhs, err := MulVec(a, xTrue)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x, err := CholSolve(l, rhs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if !almost(x[i], xTrue[i], 1e-6*(1+math.Abs(xTrue[i]))) {
				t.Fatalf("trial %d: solve mismatch at %d: %v vs %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestSolveDimensionErrors(t *testing.T) {
	l := Identity(3)
	if _, err := SolveLower(l, []float64{1}); err == nil {
		t.Error("SolveLower dim mismatch should error")
	}
	if _, err := SolveUpperT(l, []float64{1}); err == nil {
		t.Error("SolveUpperT dim mismatch should error")
	}
}

func TestLogDet(t *testing.T) {
	// det([[4,0],[0,9]]) = 36.
	a, _ := FromRows([][]float64{{4, 0}, {0, 9}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(LogDet(l), math.Log(36), 1e-12) {
		t.Errorf("LogDet = %v, want log 36", LogDet(l))
	}
}

func TestNormPDF(t *testing.T) {
	if !almost(NormPDF(0), 0.3989422804014327, 1e-15) {
		t.Errorf("NormPDF(0) = %v", NormPDF(0))
	}
	if NormPDF(3) >= NormPDF(0) {
		t.Error("PDF should decrease away from 0")
	}
	if !almost(NormPDF(-1.3), NormPDF(1.3), 1e-15) {
		t.Error("PDF should be symmetric")
	}
}

func TestNormCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.96, 0.9750021048517795},
		{-1.96, 0.024997895148220435},
		{6, 1}, // effectively 1
	}
	for _, c := range cases {
		if got := NormCDF(c.x); !almost(got, c.want, 1e-9) {
			t.Errorf("NormCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestExpectedImprovement(t *testing.T) {
	// Degenerate sigma: EI = max(0, best - mu).
	if got := ExpectedImprovement(3, 0, 5); got != 2 {
		t.Errorf("EI sigma=0 = %v, want 2", got)
	}
	if got := ExpectedImprovement(7, 0, 5); got != 0 {
		t.Errorf("EI sigma=0 worse-mean = %v, want 0", got)
	}
	// At mu == best, EI = sigma * phi(0).
	if got := ExpectedImprovement(5, 2, 5); !almost(got, 2*NormPDF(0), 1e-12) {
		t.Errorf("EI at mean = %v", got)
	}
}

// Property: EI is non-negative and increases with sigma.
func TestQuickEIProperties(t *testing.T) {
	f := func(mu, best float64, s1, s2 uint8) bool {
		if math.IsNaN(mu) || math.IsNaN(best) || math.Abs(mu) > 1e8 || math.Abs(best) > 1e8 {
			return true
		}
		sig1 := float64(s1%100) / 10
		sig2 := sig1 + float64(s2%100)/10 + 0.1
		e1 := ExpectedImprovement(mu, sig1, best)
		e2 := ExpectedImprovement(mu, sig2, best)
		return e1 >= 0 && e2 >= e1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: NormCDF is monotone non-decreasing and bounded in [0,1].
func TestQuickCDFMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		ca, cb := NormCDF(lo), NormCDF(hi)
		return ca >= 0 && cb <= 1 && ca <= cb+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
