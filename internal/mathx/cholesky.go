package mathx

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite reports that a Cholesky factorization failed.
var ErrNotPositiveDefinite = errors.New("mathx: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L of a symmetric positive
// definite matrix A such that A = L·Lᵀ. A is not modified. The strictly
// upper triangle of the returned matrix is zero.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("mathx: Cholesky requires a square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveLower solves L·y = b for y, where L is lower triangular with a
// non-zero diagonal.
func SolveLower(l *Matrix, b []float64) ([]float64, error) {
	n := l.Rows
	if len(b) != n {
		return nil, errors.New("mathx: SolveLower dimension mismatch")
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		d := l.At(i, i)
		if d == 0 {
			return nil, errors.New("mathx: singular lower triangle")
		}
		y[i] = s / d
	}
	return y, nil
}

// SolveUpperT solves Lᵀ·x = y for x given the lower triangular factor L.
func SolveUpperT(l *Matrix, y []float64) ([]float64, error) {
	n := l.Rows
	if len(y) != n {
		return nil, errors.New("mathx: SolveUpperT dimension mismatch")
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		d := l.At(i, i)
		if d == 0 {
			return nil, errors.New("mathx: singular lower triangle")
		}
		x[i] = s / d
	}
	return x, nil
}

// CholSolve solves A·x = b given the Cholesky factor L of A (A = L·Lᵀ).
func CholSolve(l *Matrix, b []float64) ([]float64, error) {
	y, err := SolveLower(l, b)
	if err != nil {
		return nil, err
	}
	return SolveUpperT(l, y)
}

// LogDet returns log(det(A)) given the Cholesky factor L of A.
func LogDet(l *Matrix) float64 {
	s := 0.0
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}
