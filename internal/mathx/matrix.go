// Package mathx implements the small dense linear-algebra and normal
// distribution kernel that the Bayesian-optimization baseline needs:
// row-major matrices, Cholesky factorization and triangular solves, and the
// standard normal PDF/CDF. Only the standard library is used.
package mathx

import (
	"errors"
	"fmt"
)

// Matrix is a dense, row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zeroed r×c matrix. It panics if r or c is not positive.
func NewMatrix(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mathx: invalid matrix dims %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices. All rows must be non-empty and
// of equal length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("mathx: FromRows needs at least one non-empty row")
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("mathx: ragged rows: row %d has %d cols, want %d", i, len(row), c)
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// AddDiag adds v to every diagonal element of a square matrix in place and
// returns m for chaining.
func (m *Matrix) AddDiag(v float64) *Matrix {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += v
	}
	return m
}

// Mul returns the matrix product a·b.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("mathx: Mul dim mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += aik * b.At(k, j)
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product a·x.
func MulVec(a *Matrix, x []float64) ([]float64, error) {
	if a.Cols != len(x) {
		return nil, fmt.Errorf("mathx: MulVec dim mismatch %dx%d · %d", a.Rows, a.Cols, len(x))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		s := 0.0
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
