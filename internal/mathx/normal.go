package mathx

import "math"

// invSqrt2Pi is 1/sqrt(2π).
const invSqrt2Pi = 0.3989422804014327

// NormPDF returns the standard normal probability density at x.
func NormPDF(x float64) float64 {
	return invSqrt2Pi * math.Exp(-0.5*x*x)
}

// NormCDF returns the standard normal cumulative distribution at x.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// ExpectedImprovement returns the one-point expected improvement of a
// Gaussian posterior N(mu, sigma²) below the incumbent best (minimization).
// A non-positive sigma degenerates to max(0, best-mu).
func ExpectedImprovement(mu, sigma, best float64) float64 {
	if sigma <= 0 {
		if d := best - mu; d > 0 {
			return d
		}
		return 0
	}
	z := (best - mu) / sigma
	return (best-mu)*NormCDF(z) + sigma*NormPDF(z)
}
