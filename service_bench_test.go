// Serving-layer benchmarks behind EXPERIMENTS.md §"Serving". Cold measures
// a full search per request (distinct fingerprints); CacheHit measures the
// steady-state hot path (same fingerprint, parallel clients); the load
// loop reports p50/p99 cache-hit latency over the HTTP handler.
//
//	go test -bench=BenchmarkServiceConfigure -benchtime=100x
package aarc_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"aarc"
)

func benchService(b *testing.B) *aarc.Service {
	b.Helper()
	svc, err := aarc.NewService(
		aarc.WithSeed(benchSeed),
		aarc.WithCacheSize(4096),
	)
	if err != nil {
		b.Fatal(err)
	}
	return svc
}

func benchSpec(b *testing.B) *aarc.Spec {
	b.Helper()
	spec, err := aarc.Workload("chatbot")
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

// BenchmarkServiceConfigure compares the two regimes of the serving layer
// on the Chatbot workload with the default AARC search.
func BenchmarkServiceConfigure(b *testing.B) {
	b.Run("Cold", func(b *testing.B) {
		svc := benchService(b)
		spec := benchSpec(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A fresh seed per iteration is a fresh fingerprint: every
			// request pays a full search.
			seed := uint64(i + 1)
			_, hit, err := svc.Configure(context.Background(), spec, aarc.ServiceRequest{Seed: &seed})
			if err != nil {
				b.Fatal(err)
			}
			if hit {
				b.Fatal("cold iteration hit the cache")
			}
		}
	})
	b.Run("CacheHit", func(b *testing.B) {
		svc := benchService(b)
		spec := benchSpec(b)
		if _, _, err := svc.Configure(context.Background(), spec, aarc.ServiceRequest{}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				_, hit, err := svc.Configure(context.Background(), spec, aarc.ServiceRequest{})
				if err != nil {
					b.Fatal(err)
				}
				if !hit {
					b.Fatal("expected a cache hit")
				}
			}
		})
	})
}

// BenchmarkServiceConfigureBatch measures batch admission on a cold burst
// of distinct fingerprints — the regime the batcher exists for. Every
// iteration mints `burst` fresh seeds (fresh fingerprints: every item
// pays a full search) and answers them either as sequential singleton
// Configure calls or as one ConfigureBatch; with enough cores the batched
// run completes in ≈ max(single-search) wall time rather than ≈ the sum,
// so ns/op is the whole comparison.
//
//	go test -bench=BenchmarkServiceConfigureBatch -benchtime=20x -run='^$' .
func BenchmarkServiceConfigureBatch(b *testing.B) {
	const burst = 8
	b.Run("SequentialSingletons", func(b *testing.B) {
		svc := benchService(b)
		spec := benchSpec(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < burst; j++ {
				seed := uint64(i*burst + j + 1)
				_, hit, err := svc.Configure(context.Background(), spec, aarc.ServiceRequest{Seed: &seed})
				if err != nil {
					b.Fatal(err)
				}
				if hit {
					b.Fatal("cold iteration hit the cache")
				}
			}
		}
	})
	b.Run("Batched", func(b *testing.B) {
		svc := benchService(b)
		spec := benchSpec(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			items := make([]aarc.ServiceBatchItem, burst)
			for j := range items {
				seed := uint64(i*burst + j + 1)
				items[j] = aarc.ServiceBatchItem{Spec: spec, Options: aarc.ServiceRequest{Seed: &seed}}
			}
			results, err := svc.ConfigureBatch(context.Background(), items)
			if err != nil {
				b.Fatal(err)
			}
			for _, res := range results {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				if res.CacheHit {
					b.Fatal("cold batch item hit the cache")
				}
			}
		}
	})
}

// BenchmarkServiceFingerprintGet measures the fingerprint-addressed fast
// path against the POST-configure hit path it bypasses. Direct is the
// store lookup itself (no HTTP); HTTPGet and HTTPPostHit drive the
// handler, so their difference is exactly what skipping the spec body —
// decode, canonicalize, hash — buys per hit.
func BenchmarkServiceFingerprintGet(b *testing.B) {
	svc := benchService(b)
	ts := httptest.NewServer(aarc.NewServiceHandler(svc))
	defer ts.Close()
	spec := benchSpec(b)
	rec, _, err := svc.Configure(context.Background(), spec, aarc.ServiceRequest{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := svc.RecommendationJSON(rec.Fingerprint); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HTTPGet", func(b *testing.B) {
		url := ts.URL + "/v1/recommendation/" + rec.Fingerprint
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
	b.Run("HTTPPostHit", func(b *testing.B) {
		body := `{"workload": "chatbot"}`
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(ts.URL+"/v1/configure", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
}

// BenchmarkServiceHTTPLoad drives the full HTTP handler with a small load
// loop — 8 concurrent clients, one shared fingerprint after the first
// request — and reports cache-hit latency percentiles alongside the
// aggregate request rate.
func BenchmarkServiceHTTPLoad(b *testing.B) {
	svc := benchService(b)
	ts := httptest.NewServer(aarc.NewServiceHandler(svc))
	defer ts.Close()
	body := `{"workload": "chatbot"}`
	post := func() error {
		resp, err := http.Post(ts.URL+"/v1/configure", "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	if err := post(); err != nil { // prime the cache (the one cold search)
		b.Fatal(err)
	}

	const clients = 8
	var mu sync.Mutex
	latencies := make([]time.Duration, 0, b.N)
	work := make(chan struct{})
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				t0 := time.Now()
				if err := post(); err != nil {
					b.Error(err)
					return
				}
				d := time.Since(t0)
				mu.Lock()
				latencies = append(latencies, d)
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < b.N; i++ {
		work <- struct{}{}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		b.ReportMetric(float64(n)/elapsed.Seconds(), "req/s")
		b.ReportMetric(float64(latencies[n/2].Microseconds()), "p50-µs")
		b.ReportMetric(float64(latencies[n*99/100].Microseconds()), "p99-µs")
	}
}
