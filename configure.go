package aarc

import (
	"context"
	"errors"
	"fmt"

	"aarc/internal/inputaware"
	"aarc/internal/search"
	"aarc/internal/workflow"
)

// Recommendation is what Configure returns: the chosen per-function
// configuration, the sampling trace behind it, and the final measured
// execution of that configuration.
type Recommendation struct {
	// Method is the presentation name of the search method used ("AARC",
	// "BO", ...).
	Method string
	// Assignment is the recommended per-group configuration.
	Assignment Assignment
	// Trace is the full sampling trace of the search.
	Trace *Trace
	// Final is the last measurement of Assignment the search observed, so
	// callers can report validated numbers without re-running the workflow.
	Final Result
	// SLOMS is the end-to-end latency SLO (milliseconds) the search ran
	// against.
	SLOMS float64

	runner *workflow.Runner
}

// SLOCompliant reports whether the final measured execution met the SLO.
// A zero Final — the searcher never measured the assignment it returned,
// possible for the naive baselines when no sample was feasible — is not
// known to be compliant and reports false.
func (r *Recommendation) SLOCompliant() bool {
	return r.Final.E2EMS > 0 && !r.Final.OOM && r.Final.E2EMS <= r.SLOMS
}

// Validate re-executes the recommended assignment n times on the search's
// own simulator — continuing its RNG stream, exactly like a validation run
// appended to the search — and returns the per-run results.
func (r *Recommendation) Validate(n int) ([]Result, error) {
	out := make([]Result, 0, n)
	for i := 0; i < n; i++ {
		res, err := r.runner.Evaluate(r.Assignment)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// Evaluate runs the workflow once under an arbitrary assignment on the
// search's simulator (for what-if probing around the recommendation).
func (r *Recommendation) Evaluate(a Assignment) (Result, error) {
	return r.runner.Evaluate(a)
}

// newSettings folds the options into the defaults.
func newSettings(opts []Option) settings {
	s := defaultSettings()
	for _, o := range opts {
		o(&s)
	}
	return s
}

func (s settings) runnerOptions() workflow.RunnerOptions {
	return workflow.RunnerOptions{
		HostCores:  s.hostCores,
		Noise:      s.noise,
		Seed:       s.seed,
		InputScale: s.inputScale,
	}
}

func (s settings) searchOptions(spec *Spec) search.Options {
	sloMS := s.sloMS
	if sloMS <= 0 {
		sloMS = spec.SLOMS
	}
	return search.Options{
		SLOMS:        sloMS,
		MaxSamples:   s.maxSamples,
		MaxSimCostMS: s.maxSimMS,
		Progress:     s.progress,
	}
}

// NewRunner builds a simulator-backed runner for a spec, honoring
// WithHostCores, WithNoise, WithSeed and WithInputScale. Use it for serving
// and validation flows that evaluate assignments directly.
func NewRunner(spec *Spec, opts ...Option) (*Runner, error) {
	return workflow.NewRunner(spec, newSettings(opts).runnerOptions())
}

// Configure searches a resource configuration for the workflow under its
// end-to-end latency SLO and returns the recommendation.
//
// The method, seed, SLO override, budgets and progress observation all come
// from the functional options; the defaults run the paper's AARC method.
// Cancelling ctx stops the search at the next recorded sample: Configure
// then returns the partial recommendation together with ctx.Err(). A
// consumed WithBudget budget is a normal stop: the partial recommendation
// returns with a nil error.
func Configure(ctx context.Context, spec *Spec, opts ...Option) (*Recommendation, error) {
	if spec == nil {
		return nil, errors.New("aarc: Configure with nil spec")
	}
	s := newSettings(opts)
	runner, err := workflow.NewRunner(spec, s.runnerOptions())
	if err != nil {
		return nil, err
	}
	searcher, err := search.New(s.method, s.seed)
	if err != nil {
		return nil, err
	}
	sopts := s.searchOptions(spec)
	out, serr := searcher.Search(ctx, runner, sopts)
	if out.Trace == nil {
		// The search failed before recording anything: no partial result.
		return nil, serr
	}
	rec := &Recommendation{
		Method:     searcher.Name(),
		Assignment: out.Best,
		Trace:      out.Trace,
		Final:      out.Final,
		SLOMS:      sopts.SLOMS,
		runner:     runner,
	}
	return rec, serr
}

// ConfigureClasses runs one search per input-size class through the
// input-aware configuration engine (§IV-D) and returns the engine that
// dispatches requests to their class configurations. The same options as
// Configure apply; each class search runs on a fresh runner at the class's
// input scale.
func ConfigureClasses(ctx context.Context, spec *Spec, classes []InputClass, opts ...Option) (*InputEngine, error) {
	if spec == nil {
		return nil, errors.New("aarc: ConfigureClasses with nil spec")
	}
	s := newSettings(opts)
	searcher, err := search.New(s.method, s.seed)
	if err != nil {
		return nil, err
	}
	engine, err := inputaware.Configure(ctx, spec, s.runnerOptions(), searcher, s.searchOptions(spec), classes)
	if err != nil {
		return nil, fmt.Errorf("aarc: %w", err)
	}
	return engine, nil
}
